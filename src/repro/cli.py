"""Command-line interface: the Bifrost workflow without writing Python.

Every subcommand is a thin adapter over :class:`repro.session.Session`,
and every configuration flag is *derived* from
:class:`~repro.session.SessionConfig` field metadata — the config
object, the ``REPRO_*`` environment variables and the CLI flags are one
namespace with one documented precedence:

    CLI flags > kwargs > REPRO_* environment > --config file > defaults

Subcommands:

* ``features`` — print the Table I feature matrix;
* ``run`` — simulate a zoo model end to end on an architecture and print
  per-layer cycles (and optionally energy);
* ``tune`` — tune one layer's mapping with a chosen tuner/objective;
* ``compare`` — default vs AutoTVM vs mRNA mappings for a zoo model's
  accelerated layers (the Figure 12 view);
* ``sweep`` — run a whole scenario matrix (``--models`` × ``--profiles``
  × ``--axis`` overrides) in one session: evaluations are flattened
  across scenarios so shared layers simulate once and the executor
  tiers stay saturated; ``--report-json`` archives the SweepReport;
* ``report diff`` — typed per-scenario cycle/energy deltas between two
  archived report files, with ``--fail-on-regression PCT`` for CI
  gating (exit 3 past the threshold);
* ``config show [--json]`` — print the fully-resolved effective config
  (the text form is valid TOML — including any ``[profile.X]`` sections
  of the source file — so ``repro config show > repro.toml`` produces a
  working ``--config`` file);
* ``worker`` — a fleet worker daemon serving simulation batches over
  TCP (its cache settings come from the same config sections);
* ``serve`` — the resident sweep service: one daemon-owned session
  (shared cache + fleet) running submitted scenario matrices as jobs;
* ``submit`` / ``jobs`` / ``status`` / ``result`` / ``cancel`` — the
  service's client verbs: submit a matrix (optionally ``--resume``
  from an archived report, optionally ``--watch`` progress), list the
  queue, poll one job, fetch or cancel it;
* ``trace`` — inspect trace files recorded with ``--trace``
  (``summary`` for the self-time/hit-rate table, ``export`` for a
  plain Chrome trace-event file);
* ``cache`` — maintenance of persistent stats caches (``compact``).

Every measurement subcommand accepts ``--config path.toml`` plus the
derived flags (``--executor``, ``--cache-path``, ``--cache-max-rows``,
``--workers``, ...).  Entry point: ``python -m repro.cli <subcommand>``
(argument lists are plain data, so the test suite drives :func:`main`
directly).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError


def _print_corrections(session) -> None:
    for correction in session.corrections:
        print(f"note: {correction}")


def _print_fleet_report(engine) -> None:
    """One-line fleet summary for runs on the remote backend.

    ``fallback batches: 0`` is the proof that the fleet actually served
    the run — the remote backend degrades to inline execution silently,
    so scripted checks (CI's distributed smoke) gate on this line rather
    than on results alone, which fallback would leave identical.
    """
    from repro.engine.scheduler import backend_counters

    backend = engine.backend
    counters = backend_counters(backend)
    if counters.get("chunks_pulled"):
        print(f"scheduler: {counters['chunks_pulled']} chunks pulled, "
              f"{counters['steals']} steals, "
              f"{counters['resplits']} re-splits")
    if not hasattr(backend, "fallback_batches"):
        return
    print(f"fleet: {backend.fallback_batches} fallback batches, "
          f"{backend.retried_shards} retried shards")


def _print_cache_report(engine, cache_path: Optional[str]) -> None:
    """One-line hit/miss summary for runs using a persistent cache.

    Persistent tiers append their per-tier breakdown (L1 memory hits
    vs JSONL/SQLite fallthrough, evictions), so the line shows *which*
    tier served the run, not just that some tier did.
    """
    if not cache_path:
        return
    counters = engine.counters()
    tiers = getattr(engine.cache, "tier_counters", None)
    tier_text = ""
    if callable(tiers):
        parts = ", ".join(
            f"{key}={value}" for key, value in sorted(tiers().items())
        )
        tier_text = f" [{parts}]"
    print(f"stats cache: {counters['cache_hits']} hits / "
          f"{counters['cache_misses']} misses "
          f"({counters['cache_hit_rate']:.1%}){tier_text} -> {cache_path}")


def _print_trace_report(session) -> None:
    """Where the session's trace landed (printed after close)."""
    if session.trace_path:
        print(f"trace written to {session.trace_path} "
              f"(load in chrome://tracing, or: repro trace summary "
              f"{session.trace_path})")


def _cmd_features(args) -> int:
    from repro.bifrost.reporting import feature_table

    print(feature_table())
    return 0


def _cmd_run(args) -> int:
    from repro.bifrost.reporting import stats_table
    from repro.session import Session, config_from_args
    from repro.stonne.energy import attach_energy

    config = config_from_args(args)
    with Session(config) as session:
        _print_corrections(session)
        report = session.run(args.model)
        print(stats_table(report.layer_stats))
        if args.energy:
            total = sum(attach_energy(s).energy for s in report.layer_stats)
            print(f"total energy: {total:,.0f} MAC-units")
        if args.report_json:
            from pathlib import Path

            Path(args.report_json).write_text(report.to_json() + "\n")
            print(f"run report written to {args.report_json}")
        _print_cache_report(session.engine, config.cache.path)
        _print_fleet_report(session.engine)
    _print_trace_report(session)
    return 0


def _cmd_tune(args) -> int:
    from repro.session import Session, config_from_args, zoo_layers

    config = config_from_args(args)
    layers = {layer.name: layer for layer in zoo_layers(args.model)}
    if args.layer not in layers:
        print(f"error: model {args.model!r} has no layer {args.layer!r}; "
              f"choose from {sorted(layers)}", file=sys.stderr)
        return 2
    with Session(config) as session:
        _print_corrections(session)
        report = session.tune(layers[args.layer])
        print(f"explored {report.num_trials} configs"
              f"{' (early stop)' if report.stopped_early else ''}")
        print(f"best mapping: {report.best_mapping}")
        print(f"best {report.objective}: {report.best_cost:,.0f}")
        _print_cache_report(session.engine, config.cache.path)
        _print_fleet_report(session.engine)
        if args.log:
            report.records.save_jsonl(args.log)
            print(f"tuning log written to {args.log}")
    _print_trace_report(session)
    return 0


def _cmd_compare(args) -> int:
    from repro.bifrost.reporting import LayerComparison, comparison_table
    from repro.session import Session, config_from_args

    config = config_from_args(args)
    with Session(config) as session:
        _print_corrections(session)
        report = session.compare(args.model)
        rows = [
            LayerComparison(row["layer"], dict(row["cycles"]))
            for row in report.rows
        ]
        print(comparison_table(rows, list(report.schemes)))
        _print_cache_report(session.engine, config.cache.path)
        _print_fleet_report(session.engine)
    _print_trace_report(session)
    return 0


def _build_matrix_plan(args, config):
    """The SweepPlan for --models/--profiles/--axis flags, or an exit
    code on malformed flags (shared by ``sweep`` and ``submit``)."""
    from repro.session import load_profiles
    from repro.sweep import SweepPlan

    models = [m.strip() for m in args.models.split(",") if m.strip()]
    profiles = None
    if args.profiles:
        if not args.config:
            print("error: --profiles requires --config (profiles live in "
                  "the config file)", file=sys.stderr)
            return 2
        names = [p.strip() for p in args.profiles.split(",") if p.strip()]
        available = load_profiles(args.config)
        missing = [name for name in names if name not in available]
        if missing:
            print(f"error: config file {args.config} defines no profile "
                  f"{', '.join(missing)}; available: "
                  f"{', '.join(sorted(available)) or '(none)'}",
                  file=sys.stderr)
            return 2
        profiles = {name: available[name] for name in names}
    axes = {}
    for item in args.axis or []:
        key, sep, values = item.partition("=")
        if not sep or not values:
            print(f"error: --axis expects KEY=V1,V2,..., got {item!r}",
                  file=sys.stderr)
            return 2
        if key in axes:
            print(f"error: --axis {key} given twice; list every value in "
                  f"one flag ({key}=V1,V2,...)", file=sys.stderr)
            return 2
        axes[key] = [v.strip() for v in values.split(",") if v.strip()]
    return SweepPlan.matrix(config, models=models, profiles=profiles,
                            axes=axes or None)


def _load_resume(path):
    """An archived SweepReport for --resume, or an exit code."""
    from repro.sweep import SweepReport

    try:
        with open(path, "r", encoding="utf-8") as handle:
            import json

            return SweepReport.from_dict(json.load(handle))
    except (OSError, ValueError, KeyError, TypeError) as exc:
        print(f"error: cannot load resume archive {path!r}: {exc}",
              file=sys.stderr)
        return 2


def _cmd_fuzz(args, config) -> int:
    """The ``sweep --fuzz`` / ``--fuzz-repro`` correctness oracle:
    generate (or reload) scenarios, cross-check every executor backend
    for bit-identical stats, shrink and re-emit any divergence."""
    from repro import fuzz as fuzz_mod

    if args.fuzz_repro:
        plan, config = fuzz_mod.load_repro(args.fuzz_repro)
        seed = None
    else:
        seed = config.tuning.seed
        plan = fuzz_mod.generate_plan(args.fuzz, seed, config)
    executors = list(fuzz_mod.DEFAULT_EXECUTORS)
    if config.fleet.workers:
        executors.append("remote")
    seed_text = f", seed {seed}" if seed is not None else ""
    print(f"fuzz: {len(plan.scenarios)} scenario(s) x {len(executors)} "
          f"executors ({', '.join(executors)}){seed_text}")
    result = fuzz_mod.cross_check(plan, base=config, executors=executors)
    for name in sorted(result.digests):
        print(f"  {name}: {result.digests[name][executors[0]]}")
    print(f"fuzz: plan digest {result.plan_digest()}")
    if result.ok:
        print(f"fuzz: all {len(result.digests)} scenario(s) bit-identical "
              f"across {', '.join(executors)}")
        return 0
    divergent = result.divergent
    print(f"fuzz: {len(divergent)} divergent scenario(s): "
          f"{', '.join(divergent)}", file=sys.stderr)
    scenario = next(s for s in plan.scenarios if s.name == divergent[0])
    minimal = fuzz_mod.shrink(scenario, executors)
    out = args.fuzz_repro_out
    fuzz_mod.write_repro(
        out, scenario.config, minimal, seed=seed,
        note=f"divergent scenario {scenario.name}",
    )
    print(f"fuzz: shrunk {scenario.name} to {len(minimal)} layer(s); "
          f"repro written to {out} "
          f"(re-run: repro sweep --fuzz-repro {out})", file=sys.stderr)
    return 4


def _cmd_sweep(args) -> int:
    """Execute a scenario matrix: models × profiles × axis overrides."""
    from repro.session import Session, config_from_args

    config = config_from_args(args)
    fuzz_modes = sum(1 for flag in (args.models, args.fuzz, args.fuzz_repro)
                     if flag)
    if fuzz_modes != 1:
        print("error: give exactly one of --models, --fuzz N or "
              "--fuzz-repro FILE", file=sys.stderr)
        return 2
    if args.fuzz or args.fuzz_repro:
        return _cmd_fuzz(args, config)
    plan = _build_matrix_plan(args, config)
    if isinstance(plan, int):
        return plan
    resume = None
    if args.resume:
        resume = _load_resume(args.resume)
        if isinstance(resume, int):
            return resume
    with Session(config) as session:
        _print_corrections(session)
        report = session.sweep(plan, resume=resume)
        print(report.summary(metric=args.metric))
        resumed = report.counters.get("resumed_scenarios")
        if resumed:
            print(f"resume: {resumed} of {len(report.scenarios)} scenarios "
                  f"adopted from {args.resume} (config-hash matched)")
        if args.report_json:
            from pathlib import Path

            Path(args.report_json).write_text(report.to_json() + "\n")
            print(f"sweep report written to {args.report_json}")
        _print_cache_report(session.engine, config.cache.path)
        _print_fleet_report(session.engine)
    _print_trace_report(session)
    return 0


def _cmd_report(args) -> int:
    """Diff archived report JSON files (run/tune/compare/sweep)."""
    from repro.sweep import diff_reports, load_report

    if args.report_command == "diff":
        diff = diff_reports(
            load_report(args.before),
            load_report(args.after),
            metrics=args.metric or None,
        )
        if args.json:
            print(diff.to_json())
        else:
            print(diff.summary())
        if args.fail_on_regression is not None:
            if diff.only_before:
                # A benchmark that vanished from the candidate report
                # must not read as "no regression".
                print(f"error: scenario(s) missing from the after "
                      f"report: {', '.join(diff.only_before)}",
                      file=sys.stderr)
                return 3
            if diff.max_regression > args.fail_on_regression:
                print(f"error: max regression "
                      f"{diff.max_regression:+.2f}% exceeds the "
                      f"--fail-on-regression {args.fail_on_regression:g}% "
                      f"gate", file=sys.stderr)
                return 3
        return 0
    print(f"error: unknown report command {args.report_command!r}",
          file=sys.stderr)
    return 2


def _cmd_config(args) -> int:
    from repro.session import config_from_args, load_profiles

    config = config_from_args(args)
    if args.config_command == "show":
        if args.json:
            print(config.to_json())
        else:
            # Text form is valid TOML for --config; profiles defined by
            # the source file are re-emitted as [profile.X.section]
            # tables so the snapshot keeps them selectable.
            profiles = (
                load_profiles(args.config)
                if getattr(args, "config", None)
                else {}
            )
            print(config.to_toml(profiles=profiles), end="")
        return 0
    print(f"error: unknown config command {args.config_command!r}",
          file=sys.stderr)
    return 2


def _cmd_worker(args) -> int:
    from repro.fleet.worker import serve
    from repro.session import config_from_args

    config = config_from_args(args)
    return serve(
        args.listen,
        cache_path=config.cache.path,
        cache_max_rows=config.cache.max_rows,
        quiet=args.quiet,
        capacity=config.fleet.capacity,
        secret=config.fleet.secret,
    )


def _cmd_serve(args) -> int:
    from repro.serve import serve
    from repro.session import config_from_args

    config = config_from_args(args)
    return serve(
        args.listen,
        config=config,
        archive_dir=args.archive_dir,
        quiet=args.quiet,
    )


def _client_secret(args=None, config=None):
    """The shared secret a client command should present.

    Every service client verb (submit/jobs/status/result/cancel)
    resolves its config the same way, so ``fleet.secret`` from a
    ``--config`` file authenticates all of them alike; the environment
    (the same REPRO_FLEET_SECRET the config layer reads) is the
    fallback when no config resolved a secret."""
    import os

    if config is not None and config.fleet.secret:
        return config.fleet.secret
    return os.environ.get("REPRO_FLEET_SECRET") or None


def _job_line(job) -> str:
    state = job.get("state", "?")
    done = job.get("completed", 0)
    total = job.get("scenarios", 0)
    label = f"  [{job['label']}]" if job.get("label") else ""
    error = f"  ({job['error']})" if job.get("error") else ""
    return (f"{job.get('id', '?'):<10} {state:<10} "
            f"{done}/{total} scenarios{label}{error}")


def _cmd_submit(args) -> int:
    """Submit a scenario matrix to a resident sweep service."""
    from repro.serve import ServeClient
    from repro.session import config_from_args

    if args.plan is not None:
        # `repro submit plan.toml` — the positional is the config file.
        args.config = args.plan
    config = config_from_args(args)
    plan = _build_matrix_plan(args, config)
    if isinstance(plan, int):
        return plan
    resume = None
    if args.resume:
        resume = _load_resume(args.resume)
        if isinstance(resume, int):
            return resume
    with ServeClient(
        args.connect, secret=_client_secret(args, config)
    ) as client:
        job = client.submit(plan, resume=resume, label=args.label)
        print(f"submitted {job['id']}: {len(plan.scenarios)} scenarios, "
              f"state {job['state']}")
        if not args.watch:
            return 0
        final = client.watch(
            job["id"],
            callback=lambda event: print(
                f"  {event.get('event', '?')}: "
                f"{event.get('name', '')} "
                f"[{event.get('completed', 0)}/{event.get('total', 0)}]"
                .rstrip()
            ),
        )
        print(_job_line(final))
        return 0 if final.get("state") == "done" else 1


def _cmd_jobs(args) -> int:
    from repro.serve import ServeClient
    from repro.session import config_from_args

    config = config_from_args(args)
    with ServeClient(
        args.connect, secret=_client_secret(args, config)
    ) as client:
        jobs = client.jobs()
    if not jobs:
        print("no jobs")
        return 0
    for job in jobs:
        print(_job_line(job))
    return 0


def _cmd_status(args) -> int:
    from repro.serve import ServeClient
    from repro.session import config_from_args

    config = config_from_args(args)
    with ServeClient(
        args.connect, secret=_client_secret(args, config)
    ) as client:
        print(_job_line(client.status(args.job)))
    return 0


def _cmd_result(args) -> int:
    from repro.serve import ServeClient
    from repro.session import config_from_args

    config = config_from_args(args)
    with ServeClient(
        args.connect, secret=_client_secret(args, config)
    ) as client:
        report = client.result(args.job)
    if args.report_json:
        from pathlib import Path

        Path(args.report_json).write_text(report.to_json() + "\n")
        print(f"sweep report written to {args.report_json}")
    else:
        print(report.summary(metric=args.metric))
    return 0


def _cmd_cancel(args) -> int:
    from repro.serve import ServeClient
    from repro.session import config_from_args

    config = config_from_args(args)
    with ServeClient(
        args.connect, secret=_client_secret(args, config)
    ) as client:
        job = client.cancel(args.job)
    print(_job_line(job))
    return 0


def _cmd_trace(args) -> int:
    """Inspect and convert trace files written by ``--trace``."""
    import json

    from repro.obs import chrome_events, read_trace, spans_from_document
    from repro.obs import summarize_spans

    try:
        doc = read_trace(args.input)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read trace {args.input!r}: {exc}",
              file=sys.stderr)
        return 2
    spans = spans_from_document(doc)
    if args.trace_command == "export":
        out = {
            "displayTimeUnit": "ms",
            "traceEvents": chrome_events(spans),
        }
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(out, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"{len(spans)} spans exported to {args.output} "
              f"(chrome://tracing / Perfetto)")
        return 0
    if args.trace_command == "summary":
        section = doc.get("reproTrace")
        metrics = (
            section.get("metrics", {}) if isinstance(section, dict) else {}
        )
        print(summarize_spans(spans, metrics, top=args.top))
        return 0
    print(f"error: unknown trace command {args.trace_command!r}",
          file=sys.stderr)
    return 2


def _cmd_cache(args) -> int:
    from repro.engine import make_stats_cache

    if args.cache_command == "compact":
        import os.path

        if not os.path.exists(args.path):
            # make_stats_cache would create an empty cache here, turning
            # a typo'd path into a silent no-op success.
            print(f"error: no cache file at {args.path!r}", file=sys.stderr)
            return 2
        cache = make_stats_cache(args.path)
        try:
            kept, dropped = cache.compact()
        finally:
            cache.close()
        print(f"compacted {args.path}: {kept} live records kept, "
              f"{dropped} superseded/corrupt lines dropped")
        return 0
    print(f"error: unknown cache command {args.cache_command!r}",
          file=sys.stderr)
    return 2


#: --help epilog: the layered config + distributed workflow in one screen.
FLEET_EPILOG = """\
layered configuration:
  Every flag below can also come from a config file or the environment
  (precedence: flags > REPRO_* environment > --config file > defaults):
      repro config show > repro.toml      # snapshot the effective config
      repro run alexnet --config repro.toml
      REPRO_EXECUTOR=process repro run alexnet

scenario matrices:
  One config file can hold named profiles ([profile.edge],
  [profile.cloud]); `repro sweep` expands models x profiles x axis
  overrides and executes the whole matrix in one session — shared
  layers simulate once and a process pool or fleet sees one wide
  batch instead of many small ones:
      repro sweep --config m.toml --profiles edge,cloud \\
          --models mlp,lenet --axis architecture.ms_size=64,128 \\
          --executor process --report-json sweep.json
  Archived reports diff (and gate CI):
      repro report diff baseline.json sweep.json --fail-on-regression 5

workload zoo & fuzzing:
  Models are looked up in one zoo registry (repro.zoo).  Besides the
  classic paper networks (alexnet, lenet, vgg_small, mlp) it registers
  modern workloads: a transformer encoder block (QKV/attention/FFN as
  dense GEMMs), depthwise_sep, grouped_conv, dilated_conv and
  nhwc_conv — all runnable by name wherever a model is named:
      repro run transformer --arch sigma
      repro sweep --models transformer,depthwise_sep --arch maeri \\
          --axis architecture.ms_size=64,128
  SIGMA/MAGMA sparsity is a first-class sweep axis in ratio form:
      repro sweep --models alexnet --arch sigma \\
          --axis architecture.sparsity_ratio=0.0,0.5,0.9
  `repro sweep --fuzz N --seed S` turns the sweep tier into a
  correctness oracle: N seeded random scenarios (random layer shapes,
  accelerator configs and mapping spaces) run once per executor
  backend (serial/thread/process, remote when fleet workers are
  configured) and every simulation statistic is cross-checked for
  bit-identical results.  Same seed, same plan, same digests.  A
  divergence is shrunk to a minimal reproducing scenario and written
  as a ready-to-run TOML (exit 4):
      repro sweep --fuzz 25 --seed 7
      repro sweep --fuzz-repro fuzz_repro.toml   # replay the repro

distributed sweeps:
  Start one worker daemon per machine (or core group) — or let the
  session do it with `fleet_autostart = N` in the [fleet] section:
      repro worker --listen 0.0.0.0:9461 --cache-path shared.sqlite
  then point any run/tune/compare/sweep at the fleet:
      repro tune alexnet conv1 --objective cycles \\
          --workers hostA:9461,hostB:9461 --cache-path sweep.sqlite
  The remote executor shards each evaluation batch across the workers,
  retries dead workers' shards on survivors, and falls back to inline
  execution when no worker is reachable — results are bit-identical to
  --executor serial.  A shared .sqlite cache path lets concurrent
  sweeps and workers reuse each other's measurements mid-run (bound it
  with --cache-max-rows); compact long-lived JSONL spills with:
  repro cache compact PATH

sweep service:
  For the many-users-one-substrate traffic model, run one resident
  daemon owning the shared cache and fleet, and submit matrices to it
  instead of running them locally:
      repro serve --listen 0.0.0.0:9462 --cache-path shared.sqlite \\
          --archive-dir archive/
      repro submit plan.toml --models alexnet,lenet \\
          --axis architecture.ms_size=64,128 --watch
      repro jobs                       # queue in submission order
      repro status job-0001            # one job's state/progress
      repro result job-0001 --report-json mine.json
      repro cancel job-0002            # stops at the next scenario
  Jobs run one at a time against the daemon's single session; clients
  overlap through the shared stats cache, so a scenario any earlier job
  simulated is a cache hit for every later one — results stay
  bit-identical to `repro sweep` run locally.  Finished (and cancelled)
  reports land in --archive-dir as plain SweepReport JSON: diff them
  with `repro report diff`, or resubmit with --resume ARCHIVED.json
  (also on plain `repro sweep`) to re-run only scenarios whose
  resolved-config hash is absent from the archive.  Set fleet.secret /
  REPRO_FLEET_SECRET on daemons and clients to require a shared-secret
  handshake on every connection (workers honour the same knob).
  SIGTERM/SIGINT shut daemons down gracefully: in-flight work drains,
  a running job's partial report is archived resumable, caches close,
  exit 0.

saturation scheduling:
  Multi-scenario batches drain through one pull-based work queue: each
  executor slot (thread, process, or fleet capacity unit) pulls the
  next chunk as it finishes, so fast slots steal slow slots' tails and
  engine groups overlap instead of running back to back.  A worker
  started with --fleet-capacity N advertises N pull slots and receives
  proportionally larger shards.  Tune the queue with --chunk-size
  (items per pull, default auto) and --steal-deadline SECONDS (an
  in-flight chunk older than this is re-split across idle slots;
  distinct from --fleet-shard-timeout, which abandons a wedged
  connection entirely — deadline seconds, timeout minutes).  Results
  stay bit-identical to --executor serial; per-run steal/re-split
  counters land in the report JSON under counters.scheduler.

tracing and metrics:
  Any run/tune/compare/sweep records spans with --trace: session ->
  sweep -> engine -> per-slot scheduler chunks (steals, re-splits and
  speculative pulls as distinct span names) -> cache tier events, plus
  one lane per fleet worker with the worker's own batch timing shipped
  back in the wire protocol.  The file loads directly in
  chrome://tracing / Perfetto:
      repro sweep --models mlp,lenet --executor process \\
          --trace --trace-path sweep_trace.json --metrics
      repro trace summary sweep_trace.json   # top spans by self-time,
                                             # hit rates, slot usage
      repro trace export sweep_trace.json chrome.json
  --metrics attaches a metrics section (per-tier cache hit rates,
  simulations/sec, chunk-latency histogram, fleet worker health) to
  the report JSON; `repro report diff` shows its deltas when both
  archives carry one.  Disabled tracing is a no-op check per span
  (<2% overhead, gated by benchmarks/bench_obs_overhead.py).
"""


def _add_service_client_args(parser) -> None:
    """The flags every lightweight service-client verb shares, so
    jobs/status/result/cancel resolve the shared secret exactly the way
    ``repro submit`` does (config file and REPRO_FLEET_SECRET alike)."""
    parser.add_argument(
        "--connect", default="127.0.0.1:9462", metavar="HOST:PORT",
        help="sweep service address (default 127.0.0.1:9462)")
    parser.add_argument(
        "--config", metavar="PATH", default=None,
        help="layered config file; resolves fleet.secret for the "
             "handshake (REPRO_FLEET_SECRET also works)")
    parser.add_argument(
        "--profile", metavar="NAME", default=None,
        help="named [profile.NAME] overlay from the --config file")


def build_parser() -> argparse.ArgumentParser:
    from repro.session import add_config_arguments
    from repro.zoo import zoo_models

    # Resolved at parser-build time so late zoo registrations (plugins,
    # fuzz models) are included in the choices.
    MODELS = zoo_models()

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bifrost reproduction CLI",
        epilog=FLEET_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("features", help="print the Table I feature matrix")

    run = sub.add_parser("run", help="simulate a zoo model end to end")
    run.add_argument("model", choices=MODELS)
    add_config_arguments(run)
    run.add_argument("--energy", action="store_true",
                     help="also report total energy")
    run.add_argument("--report-json", dest="report_json", metavar="FILE",
                     help="also write the structured RunReport as JSON")

    tune = sub.add_parser("tune", help="tune one layer's mapping (MAERI)")
    tune.add_argument("model", choices=MODELS)
    tune.add_argument("layer", help="layer name, e.g. conv3 or fc1")
    add_config_arguments(tune)
    tune.add_argument("--log", help="write the tuning history as JSONL")

    compare = sub.add_parser(
        "compare", help="default vs AutoTVM vs mRNA mappings (MAERI)"
    )
    compare.add_argument("model", choices=MODELS)
    add_config_arguments(compare)

    sweep = sub.add_parser(
        "sweep",
        help="run a scenario matrix (models x profiles x axis overrides) "
             "with cross-scenario batching and dedup",
    )
    sweep.add_argument(
        "--models", metavar="M1,M2,...",
        help=f"comma-separated zoo models ({', '.join(MODELS)})")
    sweep.add_argument(
        "--fuzz", type=int, metavar="N",
        help="instead of --models: generate N seeded random scenarios "
             "(random layers/configs/mappings), run them once per "
             "executor backend (serial/thread/process, remote when "
             "fleet workers are configured) and cross-check for "
             "bit-identical stats; divergences shrink to a minimal "
             "repro TOML (exit 4).  Seeded by --seed")
    sweep.add_argument(
        "--fuzz-repro", dest="fuzz_repro", metavar="FILE",
        help="re-run a divergence repro file written by --fuzz")
    sweep.add_argument(
        "--fuzz-repro-out", dest="fuzz_repro_out", metavar="FILE",
        default="fuzz_repro.toml",
        help="where --fuzz writes the shrunk divergence repro "
             "(default fuzz_repro.toml)")
    add_config_arguments(sweep)
    sweep.add_argument(
        "--profiles", metavar="P1,P2,...",
        help="config profiles from the --config file to expand over "
             "([profile.P1], [profile.P2], ...)")
    sweep.add_argument(
        "--axis", action="append", metavar="KEY=V1,V2,...",
        help="sweep a config knob over values (dotted section.name or "
             "flat key; repeatable, axes cross-multiply)")
    sweep.add_argument(
        "--metric", default="total_cycles",
        help="summary-table metric (default total_cycles)")
    sweep.add_argument(
        "--report-json", dest="report_json", metavar="FILE",
        help="also write the structured SweepReport as JSON "
             "(diffable via: repro report diff)")
    sweep.add_argument(
        "--resume", metavar="ARCHIVED.json",
        help="skip scenarios whose resolved-config hash matches this "
             "archived SweepReport (interrupted matrices pick up where "
             "they left off)")

    config = sub.add_parser(
        "config",
        help="inspect the layered session configuration",
    )
    config_sub = config.add_subparsers(dest="config_command", required=True)
    show = config_sub.add_parser(
        "show",
        help="print the fully-resolved effective config (flags > env > "
             "--config file > defaults); the default output is valid "
             "TOML for --config",
    )
    add_config_arguments(show)
    show.add_argument("--json", action="store_true",
                      help="emit JSON (round-trips through "
                           "SessionConfig.from_dict)")

    worker = sub.add_parser(
        "worker",
        help="serve simulation batches to remote executors (fleet daemon)",
    )
    worker.add_argument(
        "--listen", default="127.0.0.1:9461", metavar="HOST:PORT",
        help="address to bind (default 127.0.0.1:9461; port 0 picks a "
             "free port)")
    add_config_arguments(worker)
    worker.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner")

    serve = sub.add_parser(
        "serve",
        help="run the resident sweep service: one shared session, a job "
             "queue, and a report archive served to many clients",
    )
    serve.add_argument(
        "--listen", default="127.0.0.1:9462", metavar="HOST:PORT",
        help="address to bind (default 127.0.0.1:9462; port 0 picks a "
             "free port)")
    add_config_arguments(serve)
    serve.add_argument(
        "--archive-dir", dest="archive_dir", metavar="DIR",
        default="serve-archive",
        help="directory for finished-job SweepReport JSON (default "
             "serve-archive/; files feed repro report diff and --resume)")
    serve.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner")

    submit = sub.add_parser(
        "submit",
        help="submit a scenario matrix to a running sweep service",
    )
    submit.add_argument(
        "plan", nargs="?", metavar="PLAN.toml",
        help="config file describing the base config (and profiles) of "
             "the matrix; equivalent to --config PLAN.toml")
    submit.add_argument(
        "--models", required=True, metavar="M1,M2,...",
        help=f"comma-separated zoo models ({', '.join(MODELS)})")
    add_config_arguments(submit)
    submit.add_argument(
        "--profiles", metavar="P1,P2,...",
        help="config profiles from the plan file to expand over")
    submit.add_argument(
        "--axis", action="append", metavar="KEY=V1,V2,...",
        help="sweep a config knob over values (repeatable)")
    submit.add_argument(
        "--connect", default="127.0.0.1:9462", metavar="HOST:PORT",
        help="sweep service address (default 127.0.0.1:9462)")
    submit.add_argument(
        "--resume", metavar="ARCHIVED.json",
        help="archived SweepReport; the service skips config-hash-matched "
             "scenarios and folds the archived results into the job")
    submit.add_argument(
        "--label", metavar="TEXT", help="free-form job label")
    submit.add_argument(
        "--watch", action="store_true",
        help="stream scenario-level progress until the job lands "
             "(exit 0 only if it lands done)")

    jobs = sub.add_parser(
        "jobs", help="list a sweep service's jobs in submission order"
    )
    _add_service_client_args(jobs)

    status = sub.add_parser("status", help="one job's current state")
    status.add_argument("job", help="job id (repro jobs)")
    _add_service_client_args(status)

    result = sub.add_parser(
        "result",
        help="fetch a finished job's archived SweepReport",
    )
    result.add_argument("job", help="job id (repro jobs)")
    _add_service_client_args(result)
    result.add_argument(
        "--metric", default="total_cycles",
        help="summary-table metric (default total_cycles)")
    result.add_argument(
        "--report-json", dest="report_json", metavar="FILE",
        help="write the report JSON instead of printing the summary "
             "(diffable via repro report diff, resumable via --resume)")

    cancel = sub.add_parser(
        "cancel",
        help="cancel a queued or running job (running jobs stop at the "
             "next scenario boundary; the partial report stays resumable)",
    )
    cancel.add_argument("job", help="job id (repro jobs)")
    _add_service_client_args(cancel)

    report = sub.add_parser(
        "report", help="work with archived report JSON files"
    )
    report_sub = report.add_subparsers(dest="report_command", required=True)
    diff = report_sub.add_parser(
        "diff",
        help="typed per-scenario cycle/energy deltas between two report "
             "files (RunReport or SweepReport JSON); gate CI with "
             "--fail-on-regression",
    )
    diff.add_argument("before", help="baseline report JSON")
    diff.add_argument("after", help="candidate report JSON")
    diff.add_argument(
        "--fail-on-regression", dest="fail_on_regression", type=float,
        metavar="PCT", default=None,
        help="exit 3 when any metric regresses by more than PCT percent "
             "(or a baseline scenario is missing from the after report)")
    diff.add_argument(
        "--metric", action="append", metavar="NAME", default=None,
        help="only diff this metric (repeatable; a name also matches its "
             "scheme-qualified forms, e.g. cycles selects cycles[mRNA])")
    diff.add_argument(
        "--json", action="store_true",
        help="emit the structured diff as JSON instead of the table")

    trace = sub.add_parser(
        "trace",
        help="inspect trace files recorded with --trace",
        description="Inspect and convert the trace files any "
                    "run/tune/compare/sweep writes under --trace "
                    "(Chrome trace-event JSON plus a lossless "
                    "reproTrace section).",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    export = trace_sub.add_parser(
        "export",
        help="write a plain Chrome trace-event file (traceEvents only) "
             "for chrome://tracing or Perfetto",
    )
    export.add_argument("input", help="trace file written by --trace")
    export.add_argument("output", help="Chrome trace-event JSON to write")
    summary = trace_sub.add_parser(
        "summary",
        help="print top spans by self-time, cache hit rates and "
             "scheduler slot utilization",
    )
    summary.add_argument("input", help="trace file written by --trace")
    summary.add_argument(
        "--top", type=int, default=12, metavar="N",
        help="rows in the span table (default 12)")

    cache = sub.add_parser(
        "cache", help="maintain persistent stats caches"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    compact = cache_sub.add_parser(
        "compact",
        help="rewrite a cache keeping only live, deduplicated records "
             "(JSONL: last write per key wins, corrupt lines dropped; "
             "SQLite: VACUUM)",
    )
    compact.add_argument("path", help="cache file to compact")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "features": _cmd_features,
        "run": _cmd_run,
        "tune": _cmd_tune,
        "compare": _cmd_compare,
        "sweep": _cmd_sweep,
        "report": _cmd_report,
        "config": _cmd_config,
        "worker": _cmd_worker,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "status": _cmd_status,
        "result": _cmd_result,
        "cancel": _cmd_cancel,
        "trace": _cmd_trace,
        "cache": _cmd_cache,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
