"""Command-line interface: the Bifrost workflow without writing Python.

Subcommands:

* ``features`` — print the Table I feature matrix;
* ``run`` — simulate a zoo model end to end on an architecture and print
  per-layer cycles (and optionally energy);
* ``tune`` — tune one layer's mapping with a chosen tuner/objective;
* ``compare`` — default vs AutoTVM vs mRNA mappings for a zoo model's
  accelerated layers (the Figure 12 view);
* ``worker`` — a fleet worker daemon serving simulation batches over
  TCP (the execution side of ``--executor remote``);
* ``cache`` — maintenance of persistent stats caches (``compact``).

``run``/``tune``/``compare`` accept ``--executor
{serial,thread,process,remote}`` to pick the evaluation engine's
executor backend (``process`` runs simulations in parallel across local
worker processes; ``remote`` shards batches across ``--workers`` fleet
daemons) and ``--cache-path FILE`` to persist the simulation-stats
cache — ``.sqlite`` selects the shared WAL tier concurrent sweeps read
and write mid-run, anything else the JSONL warm-start spill.

Entry point: ``python -m repro.cli <subcommand> ...`` (argument lists are
plain data, so the test suite drives :func:`main` directly).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ReproError

MODELS = ("alexnet", "lenet", "vgg_small", "mlp")
ARCHITECTURES = ("maeri", "sigma", "tpu", "magma")


def _zoo_layers(model: str):
    from repro import models as zoo

    if model == "alexnet":
        return zoo.alexnet_conv_layers() + zoo.alexnet_fc_layers()
    if model == "lenet":
        return zoo.lenet_conv_layers() + zoo.lenet_fc_layers()
    if model == "vgg_small":
        return zoo.vgg_small_conv_layers() + zoo.vgg_small_fc_layers()
    if model == "mlp":
        return zoo.mlp_fc_layers()
    raise ReproError(f"unknown model {model!r}; expected one of {MODELS}")


def _build_config(args):
    from repro.bifrost import Architecture

    arch = Architecture()
    if args.arch == "maeri":
        arch.maeri()
        arch.ms_size = args.ms_size
        arch.dn_bw = args.dn_bw
        arch.rn_bw = args.rn_bw
    elif args.arch == "sigma":
        arch.sigma(args.sparsity)
        arch.ms_size = args.ms_size
        arch.dn_bw = args.dn_bw
        arch.rn_bw = args.rn_bw
    elif args.arch == "magma":
        arch.magma(args.sparsity)
        arch.ms_size = args.ms_size
        arch.dn_bw = args.dn_bw
        arch.rn_bw = args.rn_bw
    else:
        arch.tpu(args.ms_rows, args.ms_cols)
    config = arch.create_config_file()
    for correction in arch.corrections:
        print(f"note: {correction}")
    return config


def _parse_workers(text: Optional[str]) -> Optional[List[str]]:
    if not text:
        return None
    return [part.strip() for part in text.split(",") if part.strip()]


def _build_engine(config, args):
    """An evaluation engine honouring --executor/--cache-path/--workers."""
    from repro.engine import EvaluationEngine, make_stats_cache
    from repro.fleet.remote_backend import resolve_executor

    cache = (
        make_stats_cache(args.cache_path)
        if getattr(args, "cache_path", None)
        else None
    )
    executor = resolve_executor(
        getattr(args, "executor", None),
        _parse_workers(getattr(args, "workers", None)),
        getattr(args, "max_workers", None),
    )
    return EvaluationEngine(
        config,
        cache=cache,
        executor=executor,
        max_workers=getattr(args, "max_workers", None),
    )


def _add_hw_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--arch", choices=ARCHITECTURES, default="maeri")
    parser.add_argument("--ms-size", type=int, default=128, dest="ms_size")
    parser.add_argument("--dn-bw", type=int, default=64, dest="dn_bw")
    parser.add_argument("--rn-bw", type=int, default=16, dest="rn_bw")
    parser.add_argument("--ms-rows", type=int, default=16, dest="ms_rows")
    parser.add_argument("--ms-cols", type=int, default=16, dest="ms_cols")
    parser.add_argument("--sparsity", type=int, default=0)


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    from repro.engine import registered_backends

    parser.add_argument(
        "--executor", choices=registered_backends(), default=None,
        help="executor backend for batched evaluations: serial (inline), "
             "thread (GIL-bound pool), process (true parallel simulation "
             "across worker processes), or remote (shard batches across "
             "--workers fleet daemons)")
    parser.add_argument(
        "--cache-path", dest="cache_path", default=None, metavar="FILE",
        help="persist the simulation-stats cache to this file; a .sqlite/"
             ".sqlite3/.db extension selects the shared WAL-mode tier "
             "(concurrent sweeps and workers see each other's records "
             "mid-run), anything else the append-only JSONL spill that "
             "warm-starts repeated sweeps")
    parser.add_argument(
        "--max-workers", type=int, default=None, dest="max_workers",
        help="pool width for the thread/process executor backends")
    parser.add_argument(
        "--workers", default=None, metavar="HOST:PORT,...",
        help="comma-separated fleet worker addresses for the remote "
             "executor (start them with: repro worker --listen HOST:PORT); "
             "implies --executor remote, retries dead workers' shards on "
             "survivors, and falls back to inline execution when no "
             "worker is reachable")


def _print_fleet_report(engine) -> None:
    """One-line fleet summary for runs on the remote backend.

    ``fallback batches: 0`` is the proof that the fleet actually served
    the run — the remote backend degrades to inline execution silently,
    so scripted checks (CI's distributed smoke) gate on this line rather
    than on results alone, which fallback would leave identical.
    """
    backend = engine.backend
    if not hasattr(backend, "fallback_batches"):
        return
    print(f"fleet: {backend.fallback_batches} fallback batches, "
          f"{backend.retried_shards} retried shards")


def _print_cache_report(engine, cache_path: Optional[str]) -> None:
    """One-line hit/miss summary for runs using a persistent cache."""
    if not cache_path:
        return
    counters = engine.counters()
    print(f"stats cache: {counters['cache_hits']} hits / "
          f"{counters['cache_misses']} misses "
          f"({counters['cache_hit_rate']:.1%}) -> {cache_path}")


def _cmd_features(args) -> int:
    from repro.bifrost.reporting import feature_table

    print(feature_table())
    return 0


def _cmd_run(args) -> int:
    from repro.bifrost import make_session, run_layers
    from repro.bifrost.reporting import stats_table
    from repro.stonne.energy import attach_energy

    config = _build_config(args)
    strategy = args.mapping if args.arch == "maeri" else "default"
    session = make_session(
        config,
        mapping_strategy=strategy,
        executor=args.executor,
        cache_path=args.cache_path,
        max_workers=args.max_workers,
        workers=_parse_workers(args.workers),
    )
    stats = run_layers(_zoo_layers(args.model), session)
    print(stats_table(stats))
    if args.energy:
        total = sum(attach_energy(s).energy for s in stats)
        print(f"total energy: {total:,.0f} MAC-units")
    _print_cache_report(session.engine, args.cache_path)
    _print_fleet_report(session.engine)
    session.engine.close()
    return 0


def _cmd_tune(args) -> int:
    from repro.stonne.layer import ConvLayer
    from repro.tuner import (
        GATuner,
        GridSearchTuner,
        MaeriConvTask,
        MaeriFcTask,
        RandomTuner,
        XGBTuner,
    )

    config = _build_config(args)
    layers = {layer.name: layer for layer in _zoo_layers(args.model)}
    if args.layer not in layers:
        print(f"error: model {args.model!r} has no layer {args.layer!r}; "
              f"choose from {sorted(layers)}", file=sys.stderr)
        return 2
    layer = layers[args.layer]
    engine = _build_engine(config, args)
    if isinstance(layer, ConvLayer):
        task = MaeriConvTask(layer, config, objective=args.objective,
                             engine=engine)
    else:
        task = MaeriFcTask(layer, config, objective=args.objective,
                           engine=engine)
    tuners = {
        "grid": GridSearchTuner,
        "random": RandomTuner,
        "ga": GATuner,
        "xgb": XGBTuner,
    }
    tuner = tuners[args.tuner](task, seed=args.seed)
    result = tuner.tune(n_trials=args.trials, early_stopping=args.early_stopping)
    if result.best_config is None:
        print("error: no valid mapping found", file=sys.stderr)
        return 1
    mapping = task.best_mapping(result.best_config)
    print(f"explored {result.num_trials} configs"
          f"{' (early stop)' if result.stopped_early else ''}")
    print(f"best mapping: {mapping.as_tuple()}")
    print(f"best {args.objective}: {result.best_cost:,.0f}")
    _print_cache_report(engine, args.cache_path)
    _print_fleet_report(engine)
    engine.close()
    if args.log:
        result.records.save_jsonl(args.log)
        print(f"tuning log written to {args.log}")
    return 0


def _cmd_compare(args) -> int:
    from repro.bifrost.reporting import LayerComparison, comparison_table
    from repro.mrna import MrnaMapper
    from repro.stonne.layer import ConvLayer
    from repro.stonne.maeri import MaeriController
    from repro.stonne.mapping import ConvMapping, FcMapping
    from repro.tuner import GridSearchTuner, MaeriConvTask, MaeriFcTask

    config = _build_config(args)
    controller = MaeriController(config)
    mapper = MrnaMapper(config)
    engine = _build_engine(config, args)
    rows: List[LayerComparison] = []
    for layer in _zoo_layers(args.model):
        is_conv = isinstance(layer, ConvLayer)
        if is_conv:
            task = MaeriConvTask(layer, config, objective="psums",
                                 max_options_per_tile=4, engine=engine)
        else:
            task = MaeriFcTask(layer, config, objective="psums", engine=engine)
        tuned = task.best_mapping(
            GridSearchTuner(task).tune(n_trials=10 ** 9).best_config
        )
        mrna = mapper.map_conv(layer) if is_conv else mapper.map_fc(layer)
        basic = ConvMapping.basic() if is_conv else FcMapping.basic()
        run = controller.run_conv if is_conv else controller.run_fc
        rows.append(
            LayerComparison(
                layer.name,
                {
                    "default": run(layer, basic).cycles,
                    "AutoTVM": run(layer, tuned).cycles,
                    "mRNA": run(layer, mrna).cycles,
                },
            )
        )
    print(comparison_table(rows, ["default", "AutoTVM", "mRNA"]))
    _print_cache_report(engine, args.cache_path)
    _print_fleet_report(engine)
    engine.close()
    return 0


def _cmd_worker(args) -> int:
    from repro.fleet.worker import serve

    return serve(args.listen, cache_path=args.cache_path, quiet=args.quiet)


def _cmd_cache(args) -> int:
    from repro.engine import make_stats_cache

    if args.cache_command == "compact":
        import os.path

        if not os.path.exists(args.path):
            # make_stats_cache would create an empty cache here, turning
            # a typo'd path into a silent no-op success.
            print(f"error: no cache file at {args.path!r}", file=sys.stderr)
            return 2
        cache = make_stats_cache(args.path)
        try:
            kept, dropped = cache.compact()
        finally:
            cache.close()
        print(f"compacted {args.path}: {kept} live records kept, "
              f"{dropped} superseded/corrupt lines dropped")
        return 0
    print(f"error: unknown cache command {args.cache_command!r}",
          file=sys.stderr)
    return 2


#: --help epilog: the distributed workflow in one screen.
FLEET_EPILOG = """\
distributed sweeps:
  Start one worker daemon per machine (or core group):
      repro worker --listen 0.0.0.0:9461 --cache-path shared.sqlite
  then point any run/tune/compare at the fleet:
      repro tune alexnet conv1 --objective cycles \\
          --workers hostA:9461,hostB:9461 --cache-path sweep.sqlite
  The remote executor shards each evaluation batch across the workers,
  retries dead workers' shards on survivors, and falls back to inline
  execution when no worker is reachable — results are bit-identical to
  --executor serial.  A shared .sqlite cache path lets concurrent
  sweeps and workers reuse each other's measurements mid-run; compact
  long-lived JSONL spills with: repro cache compact PATH
"""


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bifrost reproduction CLI",
        epilog=FLEET_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("features", help="print the Table I feature matrix")

    run = sub.add_parser("run", help="simulate a zoo model end to end")
    run.add_argument("model", choices=MODELS)
    _add_hw_args(run)
    _add_engine_args(run)
    run.add_argument("--mapping", choices=("default", "tuned", "mrna"),
                     default="mrna")
    run.add_argument("--energy", action="store_true",
                     help="also report total energy")

    tune = sub.add_parser("tune", help="tune one layer's mapping (MAERI)")
    tune.add_argument("model", choices=MODELS)
    tune.add_argument("layer", help="layer name, e.g. conv3 or fc1")
    _add_hw_args(tune)
    _add_engine_args(tune)
    tune.add_argument("--objective", choices=("cycles", "psums", "energy"),
                      default="psums")
    tune.add_argument("--tuner", choices=("grid", "random", "ga", "xgb"),
                      default="xgb")
    tune.add_argument("--trials", type=int, default=400)
    tune.add_argument("--early-stopping", type=int, default=120,
                      dest="early_stopping")
    tune.add_argument("--seed", type=int, default=0)
    tune.add_argument("--log", help="write the tuning history as JSONL")

    compare = sub.add_parser(
        "compare", help="default vs AutoTVM vs mRNA mappings (MAERI)"
    )
    compare.add_argument("model", choices=MODELS)
    _add_hw_args(compare)
    _add_engine_args(compare)

    worker = sub.add_parser(
        "worker",
        help="serve simulation batches to remote executors (fleet daemon)",
    )
    worker.add_argument(
        "--listen", default="127.0.0.1:9461", metavar="HOST:PORT",
        help="address to bind (default 127.0.0.1:9461; port 0 picks a "
             "free port)")
    worker.add_argument(
        "--cache-path", dest="cache_path", default=None, metavar="FILE",
        help="local stats cache for the worker (use a shared .sqlite "
             "path to pool discoveries with co-located workers)")
    worker.add_argument(
        "--quiet", action="store_true", help="suppress the startup banner")

    cache = sub.add_parser(
        "cache", help="maintain persistent stats caches"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    compact = cache_sub.add_parser(
        "compact",
        help="rewrite a cache keeping only live, deduplicated records "
             "(JSONL: last write per key wins, corrupt lines dropped; "
             "SQLite: VACUUM)",
    )
    compact.add_argument("path", help="cache file to compact")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "features": _cmd_features,
        "run": _cmd_run,
        "tune": _cmd_tune,
        "compare": _cmd_compare,
        "worker": _cmd_worker,
        "cache": _cmd_cache,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
