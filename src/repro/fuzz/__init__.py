"""repro.fuzz — property fuzzing: the sweep tier as a correctness oracle.

PRs 6–9 accumulated "bit-identical to ``--executor serial``" guarantees
(batch kernels, the work-stealing scheduler, the process pool, the
fleet) that were only ever exercised on the same four classic models.
This module generates adversarial workloads and *checks the guarantee*:

1. :func:`generate_plan` — a seeded random scenario generator.  Random
   layer shapes bounded by paper-scale envelopes (conv with
   stride/padding/dilation/groups/layout, dense, raw GEMM), random
   accelerator configs drawn from the config schema (all four
   architectures, power-of-two network sizes, sparsity ratios), and
   random mapping spaces (default vs mRNA) — emitted as an ordinary
   :class:`~repro.sweep.SweepPlan` whose models are registered in the
   zoo, so nothing downstream knows it is fuzz.
2. :func:`cross_check` — executes the same plan once per executor
   backend (serial/thread/process, remote when workers are configured)
   in fresh sessions (separate caches, so a shared cache can never mask
   a divergence) and compares per-scenario digests of the full
   simulation stats.
3. :func:`shrink` — on divergence, greedily removes layers while the
   divergence persists, producing a minimal reproducing scenario.
4. :func:`write_repro` / :func:`load_repro` — the minimal scenario as a
   ready-to-run TOML file (`repro sweep --fuzz-repro FILE`).

Everything is deterministic in the seed: same seed, same plan, same
digests — which is itself a property `scripts/fuzz_smoke.py` checks.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import asdict, dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError, LayerError, ReproError
from repro.session.config import ARCHITECTURES, SessionConfig
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.sweep.plan import Scenario, SweepPlan
from repro.zoo import register_model, zoo_layers

#: Executor backends a cross-check covers by default (remote is added
#: when the base config names fleet workers).
DEFAULT_EXECUTORS = ("serial", "thread", "process")

#: Curated zoo models the first scenarios of every fuzz batch cover, so
#: modern workloads (transformer, depthwise, dilated, grouped, NHWC) are
#: always part of the oracle's diet before random shapes take over.
SEED_MODELS = (
    "transformer",
    "depthwise_sep",
    "dilated_conv",
    "grouped_conv",
    "nhwc_conv",
)

#: Paper-scale envelopes (Table III) for random accelerator configs.
_MS_SIZES = (16, 32, 64, 128, 256)
_DN_BWS = (8, 16, 32, 64, 128)
_RN_BWS = (4, 8, 16, 32, 64)
_TPU_DIMS = (4, 8, 16)
_SPARSITY_RATIOS = (0.0, 0.25, 0.5, 0.9)
_MAPPINGS = ("default", "mrna")


# ----------------------------------------------------------------------
# generation
# ----------------------------------------------------------------------
def _random_conv(rng: random.Random, name: str) -> ConvLayer:
    """One random conv layer inside the paper-scale envelope; rejection
    sampling keeps the (dilated) filter within the padded input."""
    for _ in range(64):
        groups = rng.choice((1, 1, 1, 2, 4))
        c_per_g = rng.randint(1, 8)
        k_per_g = rng.randint(1, 8)
        try:
            return ConvLayer(
                name=name,
                C=groups * c_per_g,
                H=rng.randint(4, 20),
                W=rng.randint(4, 20),
                K=groups * k_per_g,
                R=rng.randint(1, 3),
                S=rng.randint(1, 3),
                stride_h=rng.randint(1, 2),
                stride_w=rng.randint(1, 2),
                pad_h=rng.randint(0, 2),
                pad_w=rng.randint(0, 2),
                G=groups,
                dil_h=rng.randint(1, 2),
                dil_w=rng.randint(1, 2),
                layout=rng.choice(("NCHW", "NCHW", "NHWC")),
            )
        except LayerError:
            continue
    # The envelope makes rejection vanishingly rare; fall back to a
    # known-good shape rather than looping forever.
    return ConvLayer(name=name, C=4, H=8, W=8, K=4, R=3, S=3, pad_h=1, pad_w=1)


def _random_fc(rng: random.Random, name: str) -> FcLayer:
    return FcLayer(
        name=name,
        in_features=rng.randint(1, 128),
        out_features=rng.randint(1, 128),
        batch=rng.randint(1, 4),
    )


def _random_gemm(rng: random.Random, name: str) -> GemmLayer:
    return GemmLayer(
        name=name,
        M=rng.randint(1, 64),
        K=rng.randint(1, 64),
        N=rng.randint(1, 64),
    )


def _random_layers(rng: random.Random, arch: str, tag: str) -> List[Any]:
    """1–3 random layers; raw GEMMs only on architectures that run them
    (MAERI refuses bare GemmLayer workloads)."""
    kinds = ["conv", "fc"] + ([] if arch == "maeri" else ["gemm"])
    layers: List[Any] = []
    for index in range(rng.randint(1, 3)):
        kind = rng.choice(kinds)
        name = f"{tag}.l{index}.{kind}"
        if kind == "conv":
            layers.append(_random_conv(rng, name))
        elif kind == "fc":
            layers.append(_random_fc(rng, name))
        else:
            layers.append(_random_gemm(rng, name))
    return layers


def _random_arch_overrides(rng: random.Random, arch: str) -> Dict[str, Any]:
    """A random accelerator config drawn from the config schema."""
    overrides: Dict[str, Any] = {"arch": arch}
    if arch == "tpu":
        overrides["ms_rows"] = rng.choice(_TPU_DIMS)
        overrides["ms_cols"] = rng.choice(_TPU_DIMS)
    else:
        overrides["ms_size"] = rng.choice(_MS_SIZES)
        overrides["dn_bw"] = rng.choice(_DN_BWS)
        overrides["rn_bw"] = rng.choice(_RN_BWS)
    if arch in ("sigma", "magma"):
        overrides["sparsity_ratio"] = rng.choice(_SPARSITY_RATIOS)
    overrides["mapping"] = rng.choice(_MAPPINGS)
    return overrides


def fuzz_model_name(seed: int, index: int) -> str:
    return f"fuzz/s{seed}/{index:03d}"


def generate_plan(
    count: int,
    seed: int,
    base: Optional[SessionConfig] = None,
) -> SweepPlan:
    """A deterministic fuzz plan of ``count`` scenarios.

    The first scenarios cover the curated modern zoo models
    (:data:`SEED_MODELS`); the rest draw random layer stacks, which are
    registered in the zoo under ``fuzz/s<seed>/<i>`` names
    (``replace=True`` — regenerating the same seed is idempotent).
    Architectures rotate round-robin so every controller is exercised
    whenever ``count >= 4``; every other accelerator knob is drawn from
    the config schema per scenario.
    """
    if count < 1:
        raise ConfigError(f"--fuzz needs a positive scenario count, got {count}")
    base = base if base is not None else SessionConfig()
    rng = random.Random(seed)
    scenarios = []
    for index in range(count):
        arch = ARCHITECTURES[index % len(ARCHITECTURES)]
        overrides = _random_arch_overrides(rng, arch)
        if index < len(SEED_MODELS):
            model = SEED_MODELS[index]
        else:
            model = fuzz_model_name(seed, index)
            layers = _random_layers(rng, arch, f"s{seed}.{index:03d}")
            register_model(
                model,
                (lambda captured: (lambda: list(captured)))(layers),
                description=f"fuzz-generated model (seed {seed})",
                tags=("fuzz",),
                replace=True,
            )
        config = base.with_overrides(**overrides)
        flat = config.to_flat()
        assignments = tuple((key, flat[key]) for key in sorted(overrides))
        scenarios.append(
            Scenario(
                name=f"fuzz/{index:03d}/{arch}/{model.rsplit('/', 1)[-1]}",
                config=config,
                model=model,
                kind="run",
                overrides=assignments,
            )
        )
    return SweepPlan(scenarios=tuple(scenarios))


# ----------------------------------------------------------------------
# cross-checking
# ----------------------------------------------------------------------
#: Optional fault hook: ``inject(executor, scenario_name, stats_dicts)``
#: returns the (possibly mutated) stats dicts digested for that cell.
#: Tests and the smoke script use it to plant a divergence and watch the
#: oracle catch and shrink it.
InjectHook = Callable[[str, str, List[Dict[str, Any]]], List[Dict[str, Any]]]


def scenario_digest(stats_dicts: Sequence[Mapping[str, Any]]) -> str:
    """The canonical digest of one scenario's full simulation stats."""
    canonical = json.dumps(
        list(stats_dicts), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass
class CrossCheckResult:
    """Per-scenario digests across executors, plus the verdict."""

    executors: Tuple[str, ...]
    #: scenario name -> {executor: digest}
    digests: Dict[str, Dict[str, str]] = field(default_factory=dict)

    @property
    def divergent(self) -> List[str]:
        """Scenario names whose digests differ across executors."""
        return [
            name
            for name, per_exec in self.digests.items()
            if len(set(per_exec.values())) > 1
        ]

    @property
    def ok(self) -> bool:
        return not self.divergent

    def plan_digest(self) -> str:
        """One digest over every (scenario, executor) digest — the value
        two invocations of the same seed must reproduce exactly."""
        canonical = json.dumps(self.digests, sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


def cross_check(
    plan: SweepPlan,
    base: Optional[SessionConfig] = None,
    executors: Optional[Sequence[str]] = None,
    inject: Optional[InjectHook] = None,
) -> CrossCheckResult:
    """Run ``plan`` once per executor backend and compare stats digests.

    Each executor gets a *fresh* session (own in-memory cache): shared
    caches would let the first backend's results answer the second
    backend's lookups and mask exactly the divergence this oracle
    exists to catch.  Digests cover the full
    :meth:`~repro.stonne.stats.SimulationStats.to_dict` of every layer,
    so a single off-by-one in any counter of any layer flags the cell.
    """
    from repro.session import Session

    base = base if base is not None else SessionConfig()
    if executors is None:
        executors = list(DEFAULT_EXECUTORS)
        if base.fleet.workers:
            executors.append("remote")
    result = CrossCheckResult(executors=tuple(executors))
    for executor in executors:
        config = base.with_overrides(executor=executor)
        with Session(config) as session:
            report = session.sweep(plan)
        for scenario_result in report.scenarios:
            stats_dicts = [
                stats.to_dict() for stats in scenario_result.report.layer_stats
            ]
            if inject is not None:
                stats_dicts = inject(executor, scenario_result.name, stats_dicts)
            result.digests.setdefault(scenario_result.name, {})[executor] = (
                scenario_digest(stats_dicts)
            )
    return result


# ----------------------------------------------------------------------
# shrinking
# ----------------------------------------------------------------------
#: Zoo name the shrinker (and loaded repro files) register under.
SHRINK_MODEL = "fuzz/shrink"


def _layers_diverge(
    layers: Sequence[Any],
    config: SessionConfig,
    executors: Sequence[str],
    inject: Optional[InjectHook],
) -> bool:
    register_model(
        SHRINK_MODEL,
        (lambda captured: (lambda: list(captured)))(list(layers)),
        description="fuzz shrink candidate",
        tags=("fuzz",),
        replace=True,
    )
    plan = SweepPlan.single(config, model=SHRINK_MODEL, name=SHRINK_MODEL)
    return not cross_check(
        plan, base=config, executors=executors, inject=inject
    ).ok


def shrink(
    scenario: Scenario,
    executors: Sequence[str],
    inject: Optional[InjectHook] = None,
) -> List[Any]:
    """The minimal layer subset of a divergent scenario that still
    diverges (greedy one-at-a-time removal, iterated to fixpoint).

    Returns the scenario's full layer list unchanged when the divergence
    does not reproduce in isolation (a flaky or cross-scenario effect —
    still worth a repro file, just not a smaller one).
    """
    layers = list(zoo_layers(scenario.model))
    if not _layers_diverge(layers, scenario.config, executors, inject):
        return layers
    changed = True
    while changed and len(layers) > 1:
        changed = False
        for index in range(len(layers)):
            candidate = layers[:index] + layers[index + 1 :]
            if _layers_diverge(candidate, scenario.config, executors, inject):
                layers = candidate
                changed = True
                break
    return layers


# ----------------------------------------------------------------------
# repro files
# ----------------------------------------------------------------------
_LAYER_KINDS = {
    "ConvLayer": ConvLayer,
    "FcLayer": FcLayer,
    "GemmLayer": GemmLayer,
}


def _toml_scalar(value: Any) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, (int, float)):
        return str(value)
    return json.dumps(str(value))


def write_repro(
    path: str,
    config: SessionConfig,
    layers: Sequence[Any],
    seed: Optional[int] = None,
    note: Optional[str] = None,
) -> None:
    """Write a ready-to-run TOML repro file: the scenario's resolved
    config sections plus a ``[fuzz]`` section carrying the minimal
    layer stack.  Re-run it with ``repro sweep --fuzz-repro FILE``."""
    lines = [
        "# repro.fuzz divergence repro file",
        "# re-run: repro sweep --fuzz-repro " + path,
        "",
        config.to_toml().rstrip(),
        "",
        "[fuzz]",
    ]
    if seed is not None:
        lines.append(f"seed = {seed}")
    if note is not None:
        lines.append(f"note = {json.dumps(note)}")
    for layer in layers:
        lines.append("")
        lines.append("[[fuzz.layer]]")
        lines.append(f'kind = "{type(layer).__name__}"')
        for key, value in asdict(layer).items():
            lines.append(f"{key} = {_toml_scalar(value)}")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(lines) + "\n")


def load_repro(path: str) -> Tuple[SweepPlan, SessionConfig]:
    """Load a repro file back into a single-scenario plan.

    The ``[fuzz]`` section is split off before the remaining sections go
    through :meth:`SessionConfig.from_dict` (which rejects unknown
    sections by design); the layer stack registers in the zoo under
    :data:`SHRINK_MODEL`.
    """
    import tomllib

    try:
        with open(path, "rb") as handle:
            data = tomllib.load(handle)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise ConfigError(f"cannot load fuzz repro file {path!r}: {exc}") from None
    fuzz_section = data.pop("fuzz", None)
    if not isinstance(fuzz_section, dict) or not fuzz_section.get("layer"):
        raise ConfigError(
            f"fuzz repro file {path!r} has no [[fuzz.layer]] tables"
        )
    config = SessionConfig.from_dict(data)
    layers = []
    for table in fuzz_section["layer"]:
        table = dict(table)
        kind = table.pop("kind", None)
        cls = _LAYER_KINDS.get(kind)
        if cls is None:
            raise ConfigError(
                f"fuzz repro file {path!r}: unknown layer kind {kind!r}; "
                f"expected one of {sorted(_LAYER_KINDS)}"
            )
        try:
            layers.append(cls(**table))
        except (TypeError, LayerError) as exc:
            raise ConfigError(
                f"fuzz repro file {path!r}: bad {kind} table: {exc}"
            ) from None
    register_model(
        SHRINK_MODEL,
        (lambda captured: (lambda: list(captured)))(layers),
        description=f"fuzz repro loaded from {path}",
        tags=("fuzz",),
        replace=True,
    )
    plan = SweepPlan.single(config, model=SHRINK_MODEL, name=SHRINK_MODEL)
    return plan, config


__all__ = [
    "CrossCheckResult",
    "DEFAULT_EXECUTORS",
    "SEED_MODELS",
    "SHRINK_MODEL",
    "cross_check",
    "fuzz_model_name",
    "generate_plan",
    "load_repro",
    "scenario_digest",
    "shrink",
    "write_repro",
]
