"""Bifrost TOPI strategies: the bridge between the IR and STONNE.

These register "stonne"-target implementations of ``conv2d`` and
``dense`` in the operator strategy registry, "passing all relevant layer
information to the STONNE-Bifrost API" (§IV).  Installing a session makes
the graph executor's offload policy route those two ops to the simulator
while everything else runs on the CPU.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.bifrost.api import StonneBifrostApi, register_packed_funcs
from repro.errors import SimulationError
from repro.topi.registry import register_op, unregister_op

#: The session currently bound to the "stonne" target, if any.
_ACTIVE_SESSION: Optional[StonneBifrostApi] = None


def active_session() -> Optional[StonneBifrostApi]:
    return _ACTIVE_SESSION


def install_session(api: StonneBifrostApi) -> None:
    """Bind ``api`` as the stonne target (replacing any previous one)."""
    global _ACTIVE_SESSION
    uninstall_session()
    _ACTIVE_SESSION = api
    register_packed_funcs(api)

    @register_op("conv2d", "stonne")
    def _conv2d_stonne(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        session = _require_session()
        layout = attrs.get("data_layout", "NCHW")
        kwargs = dict(
            strides=tuple(attrs.get("strides", (1, 1))),
            padding=tuple(attrs.get("padding", (0, 0))),
            groups=attrs.get("groups", 1),
            layer_name=attrs.get("layer_name", "conv2d"),
        )
        if tuple(attrs.get("dilation", (1, 1))) != (1, 1):
            raise SimulationError("STONNE does not support dilated convolutions")
        if layout == "NCHW":
            return session.conv2d_nchw(inputs[0], inputs[1], **kwargs)
        return session.conv2d_nhwc(inputs[0], inputs[1], **kwargs)

    @register_op("dense", "stonne")
    def _dense_stonne(attrs: dict, inputs: List[np.ndarray]) -> np.ndarray:
        session = _require_session()
        return session.dense(
            inputs[0], inputs[1], layer_name=attrs.get("layer_name", "dense")
        )


def uninstall_session() -> None:
    """Remove the stonne target registrations (test isolation)."""
    global _ACTIVE_SESSION
    _ACTIVE_SESSION = None
    unregister_op("conv2d", "stonne")
    unregister_op("dense", "stonne")


def _require_session() -> StonneBifrostApi:
    if _ACTIVE_SESSION is None:
        raise SimulationError(
            "no Bifrost session installed; call install_session first"
        )
    return _ACTIVE_SESSION
