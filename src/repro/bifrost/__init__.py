"""Bifrost: end-to-end evaluation and optimization of reconfigurable DNN
accelerators (the paper's core contribution).

Typical use, mirroring Listing 1 through the unified Session API::

    from repro.session import Session

    with Session(arch="maeri", ms_size=128, mapping="tuned") as s:
        result = s.run(model, input_batch)
        print(result.total_cycles)

The entry points below remain for existing code; ``make_session`` and
the ``executor=`` keyword arguments are deprecation shims forwarding to
:class:`repro.session.Session`.
"""

from repro.bifrost.api import (
    StonneBifrostApi,
    get_packed_func,
    register_packed_funcs,
    registered_packed_funcs,
)
from repro.bifrost.architecture import Architecture, architecture
from repro.bifrost.configurator import SimulatorConfigurator
from repro.bifrost.mapping_config import MappingConfigurator, MappingStrategy
from repro.bifrost.reporting import (
    FEATURE_MATRIX,
    LayerComparison,
    comparison_table,
    feature_table,
    stats_table,
    stats_to_json,
)
from repro.bifrost.runner import (
    BifrostRunResult,
    make_session,
    run_graph,
    run_layers,
    run_torch_stonne,
)
from repro.bifrost.strategies import (
    active_session,
    install_session,
    uninstall_session,
)

__all__ = [
    "Architecture",
    "BifrostRunResult",
    "FEATURE_MATRIX",
    "LayerComparison",
    "MappingConfigurator",
    "MappingStrategy",
    "SimulatorConfigurator",
    "StonneBifrostApi",
    "active_session",
    "architecture",
    "comparison_table",
    "feature_table",
    "get_packed_func",
    "install_session",
    "make_session",
    "register_packed_funcs",
    "registered_packed_funcs",
    "run_graph",
    "run_layers",
    "run_torch_stonne",
    "stats_table",
    "stats_to_json",
    "uninstall_session",
]
