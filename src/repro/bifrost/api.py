"""The STONNE-Bifrost API (§V): packed functions that offload layers.

Each entry point follows the seven-step execution workflow the paper
lists:

1. parse layer information;
2. transform layer information and input data into a STONNE-compatible
   format (layout transposes, run on the CPU and *not* counted in the
   cycle totals);
3. create a new STONNE instance;
4. configure it with the architecture and dataflow mapping;
5. load the layer and run;
6. transform the output back into the caller's format;
7. record the simulated cycle count and/or partial sums.

The functions are registered in a global registry under TVM-style names
(``tvm.contrib.stonne.conv2d.nchw`` etc.), which is how the TOPI
strategies reach them.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.bifrost.mapping_config import MappingConfigurator
from repro.engine import EvaluationEngine, make_stats_cache
from repro.errors import LayerError, SimulationError
from repro.stonne.config import SimulatorConfig
from repro.stonne.controller import controller_class
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.simulator import _conv_via_gemm
from repro.stonne.sparsity import prune_to_sparsity
from repro.stonne.stats import SimulationStats
from repro.topi.layout import (
    nchw_to_nhwc,
    nhwc_to_nchw,
    npqk_to_nkpq,
    rsck_to_kcrs,
)


@dataclass
class StonneBifrostApi:
    """A configured offload endpoint: architecture + mappings + stats.

    One instance per Bifrost session; every offloaded layer appends its
    :class:`~repro.stonne.stats.SimulationStats` to :attr:`stats`.

    Stats lookups route through the session's evaluation engine, so a
    repeated shape in one graph skips the cycle model — the functional
    datapath (the im2col GEMM that produces real outputs) still executes
    for every call.

    Args:
        executor: Executor backend name
            ("serial"/"thread"/"process"/"remote") or instance for the
            session engine's batched evaluations.
        workers: Fleet worker addresses (``host:port``) for the remote
            backend.  Setting this implies ``executor="remote"`` unless
            an explicit executor is named.
        cache_path: When set, the engine's stats cache persists to this
            file (dispatched by extension through
            :func:`~repro.engine.make_stats_cache`: ``.sqlite`` selects
            the shared WAL tier concurrent processes share mid-sweep,
            anything else the JSONL spill), so sessions resume warm
            across processes.
        max_workers: Pool width for the engine's executor backend.
    """

    config: SimulatorConfig
    mappings: MappingConfigurator
    params: CycleModelParams = DEFAULT_PARAMS
    stats: List[SimulationStats] = field(default_factory=list)
    executor: Optional[str] = None
    cache_path: Optional[str] = None
    max_workers: Optional[int] = None
    workers: Optional[List[str]] = None
    _layer_counter: Dict[str, int] = field(default_factory=dict)
    _engine: Optional[EvaluationEngine] = field(default=None, repr=False)

    def __post_init__(self) -> None:
        # One engine per session, shared with the mapping configurator so
        # tuner simulations and run_layers populate the same stats cache.
        self._owned_cache = None  # persistent tier built here, closed here
        if self._engine is None:
            if (
                self.executor is not None
                or self.cache_path is not None
                or self.max_workers is not None
                or self.workers is not None
            ):
                warnings.warn(
                    "passing executor=/cache_path=/max_workers=/workers= to "
                    "StonneBifrostApi is deprecated; configure a "
                    "repro.session.Session (its .api is a fully wired "
                    "endpoint) or pass a prebuilt engine via _engine=",
                    DeprecationWarning,
                    stacklevel=3,  # caller -> dataclass __init__ -> here
                )
            cache = (
                make_stats_cache(self.cache_path)
                if self.cache_path is not None
                else None
            )
            self._owned_cache = cache
            from repro.fleet.remote_backend import resolve_executor

            executor = resolve_executor(
                self.executor, self.workers, self.max_workers
            )
            self._engine = EvaluationEngine(
                self.config,
                self.params,
                cache=cache,
                executor=executor,
                max_workers=self.max_workers,
            )
        if self.mappings.engine is None:
            self.mappings.engine = self._engine

    # ------------------------------------------------------------------
    @property
    def engine(self) -> EvaluationEngine:
        """The session's evaluation engine (cache shared across every run
        of the session and with mapping tuning)."""
        assert self._engine is not None
        return self._engine

    def close(self) -> None:
        """Release every resource this endpoint owns (idempotent).

        Closes the owning :class:`repro.session.Session` when there is
        one (the ``make_session`` shim path), so executor pools *and*
        persistent cache tiers (SQLite connections, JSONL spills) are
        torn down; endpoints constructed directly close their engine
        plus any cache they built from ``cache_path=``.
        """
        session = getattr(self, "_session", None)
        if session is not None:
            session.close()
            return
        if self._engine is not None:
            self._engine.close()
        cache = getattr(self, "_owned_cache", None)
        if cache is not None:
            cache.close()

    def __enter__(self) -> "StonneBifrostApi":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _controller_cls(self):
        return controller_class(self.config.controller_type)

    def reset_stats(self) -> None:
        """Clear recorded per-layer stats (the engine cache persists —
        cached simulations stay valid across runs)."""
        self.stats.clear()
        self._layer_counter.clear()

    def total_cycles(self) -> int:
        """Simulated cycles across every offloaded layer so far."""
        return sum(s.cycles for s in self.stats)

    def _layer_name(self, base: str) -> str:
        count = self._layer_counter.get(base, 0)
        self._layer_counter[base] = count + 1
        return base if count == 0 else f"{base}#{count}"

    def _maybe_prune(self, weights: np.ndarray) -> np.ndarray:
        """Apply the configured sparsity to weights (sparse architectures)."""
        if self._controller_cls().consumes_sparsity and self.config.sparsity_ratio:
            return prune_to_sparsity(weights, self.config.sparsity_ratio)
        return weights

    # ------------------------------------------------------------------
    # conv2d
    # ------------------------------------------------------------------
    def conv2d_nchw(
        self,
        data: np.ndarray,
        weights: np.ndarray,
        strides=(1, 1),
        padding=(0, 0),
        groups: int = 1,
        layer_name: str = "conv2d",
    ) -> np.ndarray:
        """Execute an NCHW/KCRS convolution on the simulated accelerator.

        For MAERI — which only consumes NHWC/RSCK (§V-B1) — the inputs are
        transposed on the CPU first and the NPQK output transposed back to
        NKPQ, exactly the execution path the paper describes.
        """
        if data.ndim != 4 or weights.ndim != 4:
            raise LayerError(
                f"conv2d expects 4-D tensors, got {data.shape} and {weights.shape}"
            )
        n, c, h, w = data.shape
        k, c_per_g, r, s = weights.shape
        layer = ConvLayer(
            name=self._layer_name(layer_name),
            C=c, H=h, W=w, K=k, R=r, S=s,
            stride_h=int(strides[0]), stride_w=int(strides[1]),
            pad_h=int(padding[0]), pad_w=int(padding[1]),
            G=groups, N=n,
        )
        if c_per_g != c // groups:
            raise LayerError(
                f"weight channels {c_per_g} != C/groups = {c // groups}"
            )
        weights = self._maybe_prune(weights)

        if self._controller_cls().requires_mapping:
            # Mapping-driven architectures (MAERI) consume NHWC/RSCK (§V-B1).
            # Steps i-ii: transpose NCHW -> NHWC and KCRS -> RSCK on the CPU.
            nhwc = nchw_to_nhwc(np.asarray(data, dtype=np.float64))
            rsck = np.ascontiguousarray(
                np.asarray(weights, dtype=np.float64).transpose(2, 3, 1, 0)
            )
            # Steps iii-v: resolve the mapping, then the session engine
            # serves the cycle model (cached for repeated shapes) while
            # the exact datapath always executes to produce outputs.
            mapping = self.mappings.mapping_for(layer)
            stats = self.engine.evaluate(layer, mapping)
            raw = _conv_via_gemm(
                nhwc_to_nchw(nhwc),               # functional path is NCHW
                rsck_to_kcrs(rsck),
                layer,
            )
            # Step vi: NPQK -> NKPQ back to the caller's layout.
            output = npqk_to_nkpq(
                np.ascontiguousarray(raw.transpose(0, 2, 3, 1))
            )
        else:
            stats = self.engine.evaluate(layer)
            output = _conv_via_gemm(
                np.asarray(data, dtype=np.float64),
                np.asarray(weights, dtype=np.float64),
                layer,
            )

        # Step vii: record the stats.
        self.stats.append(stats)
        return output

    def conv2d_nhwc(
        self,
        data: np.ndarray,
        weights: np.ndarray,
        strides=(1, 1),
        padding=(0, 0),
        groups: int = 1,
        layer_name: str = "conv2d",
    ) -> np.ndarray:
        """Execute an NHWC/RSCK convolution (MAERI's native layout)."""
        if data.ndim != 4 or weights.ndim != 4:
            raise LayerError(
                f"conv2d expects 4-D tensors, got {data.shape} and {weights.shape}"
            )
        nchw = nhwc_to_nchw(np.asarray(data, dtype=np.float64))
        kcrs = rsck_to_kcrs(np.asarray(weights, dtype=np.float64))
        out_nchw = self.conv2d_nchw(
            nchw, kcrs, strides=strides, padding=padding, groups=groups,
            layer_name=layer_name,
        )
        return nchw_to_nhwc(out_nchw)

    # ------------------------------------------------------------------
    # dense
    # ------------------------------------------------------------------
    def dense(
        self,
        data: np.ndarray,
        weights: np.ndarray,
        layer_name: str = "dense",
    ) -> np.ndarray:
        """Execute a dense layer (GEMM on every architecture, §V-A)."""
        if data.ndim != 2 or weights.ndim != 2:
            raise LayerError(
                f"dense expects 2-D tensors, got {data.shape} and {weights.shape}"
            )
        if weights.shape[1] != data.shape[1]:
            raise SimulationError(
                f"dense weight shape {weights.shape} does not match input "
                f"features {data.shape[1]}"
            )
        layer = FcLayer(
            name=self._layer_name(layer_name),
            in_features=data.shape[1],
            out_features=weights.shape[0],
            batch=data.shape[0],
        )
        weights = self._maybe_prune(np.asarray(weights, dtype=np.float64))
        mapping = (
            self.mappings.mapping_for(layer)
            if self._controller_cls().requires_mapping
            else None
        )
        # Cycle model through the session engine (cached for repeated
        # shapes); the functional GEMM always executes.
        stats = self.engine.evaluate(layer, mapping)
        output = np.asarray(data, dtype=np.float64) @ weights.T
        self.stats.append(stats)
        return output


# ----------------------------------------------------------------------
# TVM-style global function registry
# ----------------------------------------------------------------------
_GLOBAL_FUNCS: Dict[str, Callable] = {}


def register_packed_funcs(api: StonneBifrostApi) -> None:
    """Expose an API instance under TVM's global function names."""
    _GLOBAL_FUNCS["tvm.contrib.stonne.conv2d.nchw"] = api.conv2d_nchw
    _GLOBAL_FUNCS["tvm.contrib.stonne.conv2d.nhwc"] = api.conv2d_nhwc
    _GLOBAL_FUNCS["tvm.contrib.stonne.dense"] = api.dense


def get_packed_func(name: str) -> Callable:
    """Look up a registered packed function by its TVM-style name."""
    try:
        return _GLOBAL_FUNCS[name]
    except KeyError:
        raise SimulationError(
            f"packed function {name!r} is not registered; call "
            "register_packed_funcs first"
        ) from None


def registered_packed_funcs() -> List[str]:
    return sorted(_GLOBAL_FUNCS)
