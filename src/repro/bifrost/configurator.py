"""Simulator configurator: validated, auto-corrected hardware configs.

Bifrost's simulator configurator (§VI) "ensures that only valid hardware
configurations for simulation are specified" and, for the TPU, "will
correct improperly configured distribution and reduction networks".
:class:`SimulatorConfigurator` is that layer: a mutable staging object
whose :meth:`build` emits an immutable, fully validated
:class:`~repro.stonne.config.SimulatorConfig` — fixing what can be fixed
(TPU bandwidths, bandwidth rounding) and raising
:class:`~repro.errors.ConfigError` for what cannot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ConfigError
from repro.stonne.config import (
    ControllerType,
    MsNetworkType,
    ReduceNetworkType,
    SimulatorConfig,
)
from repro.stonne.layer import is_power_of_two, next_power_of_two
from repro.stonne.params import DEFAULT_DN_BW, DEFAULT_MS_SIZE, DEFAULT_RN_BW


@dataclass
class SimulatorConfigurator:
    """Staging area for a hardware configuration.

    Attributes mirror Table III.  ``corrections`` records every fix the
    configurator applied, so users can see what Bifrost changed.
    """

    controller_type: ControllerType = ControllerType.MAERI_DENSE_WORKLOAD
    ms_size: int = DEFAULT_MS_SIZE
    ms_rows: int = 16
    ms_cols: int = 16
    dn_bw: int = DEFAULT_DN_BW
    rn_bw: int = DEFAULT_RN_BW
    reduce_network_type: Optional[ReduceNetworkType] = None
    sparsity_ratio: int = 0
    accumulation_buffer: bool = True
    corrections: List[str] = field(default_factory=list)

    def _correct(self, message: str) -> None:
        self.corrections.append(message)

    # ------------------------------------------------------------------
    def build(self) -> SimulatorConfig:
        """Emit a validated config, auto-correcting where Bifrost does."""
        ct = ControllerType(self.controller_type)
        self.corrections = []

        if ct is ControllerType.TPU_OS_DENSE:
            return self._build_tpu()
        return self._build_linear(ct)

    def _build_linear(self, ct: ControllerType) -> SimulatorConfig:
        ms_size = self.ms_size
        if ms_size < 8:
            raise ConfigError(
                f"ms_size must be >= 8 for {ct.value}, got {ms_size}"
            )
        if not is_power_of_two(ms_size):
            fixed = next_power_of_two(ms_size)
            self._correct(f"ms_size {ms_size} rounded up to power of two {fixed}")
            ms_size = fixed

        dn_bw = self.dn_bw
        if not is_power_of_two(dn_bw):
            fixed = next_power_of_two(dn_bw)
            self._correct(f"dn_bw {dn_bw} rounded up to power of two {fixed}")
            dn_bw = fixed
        rn_bw = self.rn_bw
        if not is_power_of_two(rn_bw):
            fixed = next_power_of_two(rn_bw)
            self._correct(f"rn_bw {rn_bw} rounded up to power of two {fixed}")
            rn_bw = fixed

        sparse_controllers = (
            ControllerType.SIGMA_SPARSE_GEMM,
            ControllerType.MAGMA_SPARSE_DENSE,
        )
        if ct in sparse_controllers:
            reduce_net = self.reduce_network_type or ReduceNetworkType.FENETWORK
            sparsity = self.sparsity_ratio
        else:
            reduce_net = self.reduce_network_type or ReduceNetworkType.ASNETWORK
            if self.sparsity_ratio:
                raise ConfigError(
                    f"sparsity_ratio={self.sparsity_ratio} is only supported "
                    "by SIGMA and MAGMA; MAERI runs dense workloads"
                )
            sparsity = 0
        if reduce_net is ReduceNetworkType.TEMPORALRN:
            raise ConfigError(f"{ct.value} cannot use TEMPORALRN")

        return SimulatorConfig(
            controller_type=ct,
            ms_network_type=MsNetworkType.LINEAR,
            ms_size=ms_size,
            dn_bw=dn_bw,
            rn_bw=rn_bw,
            reduce_network_type=reduce_net,
            sparsity_ratio=sparsity,
            accumulation_buffer=self.accumulation_buffer,
        )

    def _build_tpu(self) -> SimulatorConfig:
        rows, cols = self.ms_rows, self.ms_cols
        if not is_power_of_two(rows):
            fixed = next_power_of_two(rows)
            self._correct(f"ms_rows {rows} rounded up to power of two {fixed}")
            rows = fixed
        if not is_power_of_two(cols):
            fixed = next_power_of_two(cols)
            self._correct(f"ms_cols {cols} rounded up to power of two {fixed}")
            cols = fixed

        expected_dn = rows + cols
        expected_rn = rows * cols
        if self.dn_bw != expected_dn:
            self._correct(
                f"TPU dn_bw corrected from {self.dn_bw} to ms_rows + ms_cols "
                f"= {expected_dn}"
            )
        if self.rn_bw != expected_rn:
            self._correct(
                f"TPU rn_bw corrected from {self.rn_bw} to ms_rows * ms_cols "
                f"= {expected_rn}"
            )
        if not self.accumulation_buffer:
            self._correct("TPU requires an accumulation buffer; enabled it")
        if self.reduce_network_type not in (None, ReduceNetworkType.TEMPORALRN):
            self._correct(
                f"TPU reduce network corrected from "
                f"{self.reduce_network_type.value} to TEMPORALRN"
            )
        if self.sparsity_ratio:
            raise ConfigError(
                f"sparsity_ratio={self.sparsity_ratio} is only supported by "
                "SIGMA; the TPU runs dense workloads"
            )

        return SimulatorConfig(
            controller_type=ControllerType.TPU_OS_DENSE,
            ms_network_type=MsNetworkType.OS_MESH,
            ms_rows=rows,
            ms_cols=cols,
            dn_bw=expected_dn,
            rn_bw=expected_rn,
            reduce_network_type=ReduceNetworkType.TEMPORALRN,
            accumulation_buffer=True,
        )
