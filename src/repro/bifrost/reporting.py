"""Reporting helpers: comparison tables and the Table I feature matrix."""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.stonne.stats import SimulationStats

#: Table I of the paper: tools x features.
FEATURE_MATRIX: Dict[str, Dict[str, bool]] = {
    "SMAUG": {
        "model_support": False,
        "easy_mapping_exploration": False,
        "multiple_accelerators": True,
        "sparsity_support": True,
        "framework_integration": False,
        "cycle_accurate": True,
    },
    "SCALE-Sim": {
        "model_support": False,
        "easy_mapping_exploration": False,
        "multiple_accelerators": False,
        "sparsity_support": False,
        "framework_integration": False,
        "cycle_accurate": True,
    },
    "SECDA": {
        "model_support": False,
        "easy_mapping_exploration": False,
        "multiple_accelerators": False,
        "sparsity_support": False,
        "framework_integration": True,
        "cycle_accurate": False,
    },
    "VTA": {
        "model_support": True,
        "easy_mapping_exploration": False,
        "multiple_accelerators": False,
        "sparsity_support": False,
        "framework_integration": True,
        "cycle_accurate": False,
    },
    "STONNE": {
        "model_support": False,
        "easy_mapping_exploration": False,
        "multiple_accelerators": True,
        "sparsity_support": True,
        "framework_integration": False,
        "cycle_accurate": True,
    },
    "Bifrost": {
        "model_support": True,
        "easy_mapping_exploration": True,
        "multiple_accelerators": True,
        "sparsity_support": True,
        "framework_integration": True,
        "cycle_accurate": True,
    },
}

FEATURE_LABELS = {
    "model_support": "Model support",
    "easy_mapping_exploration": "Easy mapping exploration",
    "multiple_accelerators": "Multiple accelerators",
    "sparsity_support": "Sparsity support",
    "framework_integration": "DNN framework integration",
    "cycle_accurate": "Cycle-accurate simulation",
}


def feature_table() -> str:
    """Render Table I as aligned text."""
    systems = list(FEATURE_MATRIX)
    width = max(len(label) for label in FEATURE_LABELS.values())
    header = " " * (width + 2) + "  ".join(f"{s:>9}" for s in systems)
    lines = [header]
    for key, label in FEATURE_LABELS.items():
        cells = "  ".join(
            f"{'yes' if FEATURE_MATRIX[s][key] else 'no':>9}" for s in systems
        )
        lines.append(f"{label:<{width}}  {cells}")
    return "\n".join(lines)


@dataclass
class LayerComparison:
    """Cycle comparison of several mapping sources for one layer."""

    layer: str
    cycles: Dict[str, int]

    def speedup(self, baseline: str, candidate: str) -> float:
        return self.cycles[baseline] / self.cycles[candidate]


def comparison_table(
    rows: Sequence[LayerComparison], columns: Sequence[str]
) -> str:
    """Render a layers x mapping-sources cycle table as aligned text."""
    header = f"{'layer':<10}" + "".join(f"{c:>16}" for c in columns)
    lines = [header]
    for row in rows:
        cells = "".join(f"{row.cycles[c]:>16,}" for c in columns)
        lines.append(f"{row.layer:<10}{cells}")
    return "\n".join(lines)


def stats_table(stats: Sequence[SimulationStats]) -> str:
    """Per-layer cycles/psums/utilization table."""
    header = (
        f"{'layer':<12}{'cycles':>14}{'psums':>14}{'macs':>14}{'util':>8}"
    )
    lines = [header]
    for s in stats:
        lines.append(
            f"{s.layer_name:<12}{s.cycles:>14,}{s.psums:>14,}"
            f"{s.macs:>14,}{s.utilization:>8.1%}"
        )
    total_cycles = sum(s.cycles for s in stats)
    lines.append(f"{'total':<12}{total_cycles:>14,}")
    return "\n".join(lines)


def stats_to_json(stats: Sequence[SimulationStats]) -> str:
    """Machine-readable per-layer dump."""
    return json.dumps([s.to_dict() for s in stats], indent=2)
