"""Mapping configurator: where each layer's dataflow mapping comes from.

Bifrost supports four sources (§IV): a *manual* per-layer mapping, an
auto-generated *default* (all tiles 1 — "execution using this mapping
will be inefficient, but it makes it possible to quickly evaluate an
architecture"), a *tuned* mapping from the AutoTVM module, or a mapping
from a specialized tool (*mRNA*).  :class:`MappingConfigurator` resolves
a layer to its mapping with per-layer overrides winning over the global
strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields as dataclass_fields
from enum import Enum
from typing import Dict, Optional, Union

from repro.engine import EvaluationEngine
from repro.errors import MappingError, TuningError
from repro.mrna.mapper import MrnaMapper
from repro.stonne.config import SimulatorConfig
from repro.stonne.controller import controller_class
from repro.stonne.layer import ConvLayer, FcLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.tuner.measure import MaeriConvTask, MaeriFcTask
from repro.tuner.tuners.xgb import XGBTuner

Layer = Union[ConvLayer, FcLayer]
Mapping = Union[ConvMapping, FcMapping]


class MappingStrategy(str, Enum):
    """How mappings are produced when no manual override exists."""

    DEFAULT = "default"
    TUNED = "tuned"
    MRNA = "mrna"


@dataclass
class MappingConfigurator:
    """Resolves layers to mappings; caches tuned/mRNA results.

    Args:
        config: The MAERI hardware configuration mappings must fit.
        strategy: Fallback source when a layer has no manual mapping.
        objective: Tuning objective for the TUNED strategy
            ("psums" — the paper's choice — or "cycles").
        tuner_trials: Measurement budget per layer for TUNED.
        tuner_early_stopping: Early-stopping patience for TUNED.
    """

    config: SimulatorConfig
    strategy: MappingStrategy = MappingStrategy.DEFAULT
    objective: str = "psums"
    tuner_trials: int = 400
    tuner_early_stopping: int = 120
    seed: int = 0
    manual: Dict[str, Mapping] = field(default_factory=dict)
    engine: Optional[EvaluationEngine] = field(default=None, repr=False)
    _cache: Dict[tuple, Mapping] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.strategy = MappingStrategy(self.strategy)

    # ------------------------------------------------------------------
    def set_manual(self, layer_name: str, mapping: Mapping) -> None:
        """Pin a specific mapping for a layer (wins over the strategy)."""
        self.manual[layer_name] = mapping

    def mapping_for(self, layer: Layer) -> Mapping:
        """The mapping this layer should run with."""
        if layer.name in self.manual:
            mapping = self.manual[layer.name]
            self._check_kind(layer, mapping)
            return mapping
        # Cache by layer *structure*, not name: two models in one
        # session (or one sweep) may both have an "fc1" with different
        # shapes, and identically shaped layers under different names
        # should share one tuned mapping.
        key = self._structural_key(layer)
        if key in self._cache:
            return self._cache[key]
        mapping = self._generate(layer)
        self._cache[key] = mapping
        return mapping

    @staticmethod
    def _structural_key(layer: Layer) -> tuple:
        return (
            type(layer).__name__,
            tuple(
                getattr(layer, f.name)
                for f in dataclass_fields(layer)
                if f.name != "name"
            ),
        )

    # ------------------------------------------------------------------
    @staticmethod
    def _check_kind(layer: Layer, mapping: Mapping) -> None:
        if isinstance(layer, ConvLayer) and not isinstance(mapping, ConvMapping):
            raise MappingError(
                f"layer {layer.name!r} is a convolution but the manual "
                f"mapping is {type(mapping).__name__}"
            )
        if isinstance(layer, FcLayer) and not isinstance(mapping, FcMapping):
            raise MappingError(
                f"layer {layer.name!r} is fully connected but the manual "
                f"mapping is {type(mapping).__name__}"
            )

    def _generate(self, layer: Layer) -> Mapping:
        if not controller_class(self.config.controller_type).requires_mapping:
            raise TuningError(
                "mappings are only configurable for MAERI; SIGMA and the TPU "
                "orchestrate their own dataflow"
            )
        if self.strategy is MappingStrategy.DEFAULT:
            return (
                ConvMapping.basic()
                if isinstance(layer, ConvLayer)
                else FcMapping.basic()
            )
        if self.strategy is MappingStrategy.MRNA:
            mapper = MrnaMapper(self.config)
            if isinstance(layer, ConvLayer):
                return mapper.map_conv(layer)
            return mapper.map_fc(layer)
        return self._tune(layer)

    def _tune(self, layer: Layer) -> Mapping:
        """Run the AutoTVM module (GBT tuner, early stopping) on a layer.

        Every layer's task shares this configurator's evaluation engine,
        so tuning a layer whose shape already appeared in the network is
        served from the stats cache instead of re-simulated.
        """
        if self.engine is None:
            self.engine = EvaluationEngine(self.config)
        if isinstance(layer, ConvLayer):
            task = MaeriConvTask(
                layer, self.config, objective=self.objective, engine=self.engine
            )
        else:
            task = MaeriFcTask(
                layer, self.config, objective=self.objective, engine=self.engine
            )
        tuner = XGBTuner(task, seed=self.seed)
        result = tuner.tune(
            n_trials=self.tuner_trials,
            early_stopping=self.tuner_early_stopping,
        )
        if result.best_config is None:
            raise TuningError(
                f"tuning found no valid mapping for layer {layer.name!r}"
            )
        return task.best_mapping(result.best_config)
