"""End-to-end runners: the ``run_torch_stonne``-style entry points.

This is the surface Listing 1 shows: hand Bifrost a model and an input,
get the model output back, with conv2d/dense layers transparently executed
on the simulated accelerator and everything else on the CPU.

Sessions are owned by :class:`repro.session.Session` these days —
``make_session`` survives as a deprecation shim forwarding there, and
the ``run_*`` helpers accept either a :class:`Session` or its
:class:`~repro.bifrost.api.StonneBifrostApi` endpoint.  New code should
prefer::

    with Session.from_file("repro.toml") as s:
        report = s.run(model, input_batch)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.bifrost.api import StonneBifrostApi
from repro.bifrost.mapping_config import MappingConfigurator, MappingStrategy
from repro.bifrost.strategies import install_session, uninstall_session
from repro.ir.graph import Graph
from repro.runtime.executor import GraphExecutor, make_offload_policy
from repro.stonne.config import SimulatorConfig
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.stats import SimulationStats, combine_stats


@dataclass
class BifrostRunResult:
    """Model output plus the per-layer simulation statistics."""

    outputs: List[np.ndarray]
    layer_stats: List[SimulationStats]

    @property
    def output(self) -> np.ndarray:
        return self.outputs[0]

    @property
    def total_cycles(self) -> int:
        return sum(s.cycles for s in self.layer_stats)

    @property
    def total_psums(self) -> int:
        return sum(s.psums for s in self.layer_stats)

    def combined(self, name: str = "model") -> SimulationStats:
        return combine_stats(name, self.layer_stats)


def _as_api(session) -> StonneBifrostApi:
    """Accept a :class:`repro.session.Session` or a bare API endpoint."""
    return session.api if hasattr(session, "api") else session


def make_session(
    config: SimulatorConfig,
    mapping_strategy: Union[MappingStrategy, str] = MappingStrategy.DEFAULT,
    objective: str = "psums",
    params: CycleModelParams = DEFAULT_PARAMS,
    tuner_trials: int = 400,
    tuner_early_stopping: int = 120,
    executor: Optional[str] = None,
    cache_path: Optional[str] = None,
    max_workers: Optional[int] = None,
    workers: Optional[List[str]] = None,
) -> StonneBifrostApi:
    """Deprecated: build a Bifrost session the pre-``repro.session`` way.

    .. deprecated::
        Use :class:`repro.session.Session` — it accepts the same options
        as one typed :class:`~repro.session.SessionConfig`, adds
        file/env layering, and tears everything down deterministically::

            with Session(executor="process", cache_path="stats.sqlite") as s:
                report = s.run("alexnet")

    This shim forwards to :class:`~repro.session.Session` (hermetically:
    the environment layer is skipped, preserving the old semantics) and
    returns the session's :class:`StonneBifrostApi` endpoint, which
    behaves exactly as before.
    """
    warnings.warn(
        "make_session is deprecated; use repro.session.Session "
        "(e.g. `with Session(executor=..., cache_path=...) as s:`)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.session import Session, SessionConfig

    session_config = SessionConfig.resolve(
        env=False,
        mapping=MappingStrategy(mapping_strategy).value,
        objective=objective,
        trials=tuner_trials,
        early_stopping=tuner_early_stopping,
        executor=executor,
        cache_path=cache_path,
        max_workers=max_workers,
        workers=tuple(workers) if workers else (),
    )
    session = Session(session_config, simulator_config=config, params=params)
    api = session.api
    # Preserve the informational fields legacy callers could inspect,
    # and keep the owning session reachable so api.close() tears down
    # the cache tier and pools the session built.
    api.executor = executor
    api.cache_path = cache_path
    api.max_workers = max_workers
    api.workers = list(workers) if workers else None
    api._session = session
    return api


def _annotate_layer_names(graph: Graph) -> None:
    """Give offloaded nodes their IR names so stats are attributable."""
    for node in graph.op_nodes():
        if node.op_name in ("conv2d", "dense"):
            node.attrs.setdefault("layer_name", node.name)


def run_graph(
    graph: Graph,
    feeds: Dict[str, np.ndarray],
    session: StonneBifrostApi,
    executor: Optional[str] = None,
) -> BifrostRunResult:
    """Execute ``graph`` with conv2d/dense offloaded to ``session``.

    The session (a :class:`repro.session.Session` or its API endpoint)
    is installed as the "stonne" target for the duration of the call and
    uninstalled afterwards, so parallel CPU-only execution elsewhere is
    unaffected.  ``executor`` overrides the session engine's backend for
    the call — deprecated: configure the executor on
    :class:`~repro.session.SessionConfig` instead.
    """
    session = _as_api(session)
    engine = session.engine
    previous_backend = engine.backend
    if executor is not None:
        warnings.warn(
            "run_graph(executor=...) is deprecated; set the executor on "
            "the session's SessionConfig (engine section) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        # Resolved before any global state changes so an unknown backend
        # name fails cleanly; cached on the engine, so repeated calls
        # reuse one pool and engine.close() shuts it down.
        engine.backend = engine._resolve_backend(executor, engine.max_workers)
    _annotate_layer_names(graph)
    session.reset_stats()
    install_session(session)
    try:
        graph_executor = GraphExecutor(graph, make_offload_policy("stonne"))
        outputs = graph_executor.run(feeds)
    finally:
        uninstall_session()
        engine.backend = previous_backend
    return BifrostRunResult(outputs=outputs, layer_stats=list(session.stats))


def run_torch_stonne(
    model,
    input_batch: np.ndarray,
    session: StonneBifrostApi,
    input_shape: Optional[Tuple[int, ...]] = None,
) -> BifrostRunResult:
    """Listing 1's entry point: run a torch-like model on STONNE.

    ``model`` is a :mod:`repro.frontends.torchlike` module tree; the
    input batch's shape is used unless ``input_shape`` overrides it.
    """
    from repro.frontends.torchlike import from_torchlike

    shape = tuple(input_shape or np.asarray(input_batch).shape)
    graph = from_torchlike(model, shape)
    first_input = graph.nodes[graph.input_ids[0]].name
    return run_graph(graph, {first_input: np.asarray(input_batch)}, session)


def run_layers(
    layers,
    session: StonneBifrostApi,
    executor: Optional[str] = None,
) -> List[SimulationStats]:
    """Simulate bare layer descriptors (no tensors), for benchmarking.

    Accepts :class:`~repro.stonne.layer.ConvLayer` /
    :class:`~repro.stonne.layer.FcLayer` descriptors and returns one
    stats record per layer, honouring the session's mapping strategy.
    The whole batch is submitted to the session engine's
    :meth:`~repro.engine.EvaluationEngine.evaluate_many` — repeated
    shapes are served from the stats cache instead of re-simulated.
    ``executor`` overrides the engine's backend for this batch —
    deprecated: configure the executor on the session's
    :class:`~repro.session.SessionConfig` instead.
    """
    from repro.engine import EvalRequest
    from repro.stonne.layer import ConvLayer, FcLayer

    if executor is not None:
        warnings.warn(
            "run_layers(executor=...) is deprecated; set the executor on "
            "the session's SessionConfig (engine section) instead",
            DeprecationWarning,
            stacklevel=2,
        )
    session = _as_api(session)
    engine = session.engine
    requests: List[EvalRequest] = []
    for layer in layers:
        if not isinstance(layer, (ConvLayer, FcLayer)):
            raise TypeError(
                f"run_layers expects ConvLayer/FcLayer, got {type(layer).__name__}"
            )
        mapping = (
            session.mappings.mapping_for(layer) if engine.requires_mapping else None
        )
        requests.append(EvalRequest(layer=layer, mapping=mapping))
    results = engine.evaluate_many(requests, executor=executor)
    session.stats.extend(results)
    return results
