"""End-to-end runners: the ``run_torch_stonne``-style entry points.

This is the surface Listing 1 shows: hand Bifrost a model and an input,
get the model output back, with conv2d/dense layers transparently executed
on the simulated accelerator and everything else on the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from repro.bifrost.api import StonneBifrostApi
from repro.bifrost.mapping_config import MappingConfigurator, MappingStrategy
from repro.bifrost.strategies import install_session, uninstall_session
from repro.ir.graph import Graph
from repro.runtime.executor import GraphExecutor, make_offload_policy
from repro.stonne.config import SimulatorConfig
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.stats import SimulationStats, combine_stats


@dataclass
class BifrostRunResult:
    """Model output plus the per-layer simulation statistics."""

    outputs: List[np.ndarray]
    layer_stats: List[SimulationStats]

    @property
    def output(self) -> np.ndarray:
        return self.outputs[0]

    @property
    def total_cycles(self) -> int:
        return sum(s.cycles for s in self.layer_stats)

    @property
    def total_psums(self) -> int:
        return sum(s.psums for s in self.layer_stats)

    def combined(self, name: str = "model") -> SimulationStats:
        return combine_stats(name, self.layer_stats)


def make_session(
    config: SimulatorConfig,
    mapping_strategy: Union[MappingStrategy, str] = MappingStrategy.DEFAULT,
    objective: str = "psums",
    params: CycleModelParams = DEFAULT_PARAMS,
    tuner_trials: int = 400,
    tuner_early_stopping: int = 120,
    executor: Optional[str] = None,
    cache_path: Optional[str] = None,
    max_workers: Optional[int] = None,
    workers: Optional[List[str]] = None,
) -> StonneBifrostApi:
    """Build a Bifrost session: config + mapping configurator + stats.

    ``executor`` selects the session engine's backend
    ("serial"/"thread"/"process"/"remote") for batched evaluations —
    tuner generations and :func:`run_layers` batches fan out through it.
    ``workers`` is the fleet for the remote backend (``host:port``
    addresses; implies ``executor="remote"`` unless one is named).
    ``cache_path`` persists the engine's stats cache — a ``.sqlite``
    path selects the shared WAL tier a fleet can read and write
    mid-sweep, anything else the JSONL warm-start spill.
    """
    mappings = MappingConfigurator(
        config=config,
        strategy=MappingStrategy(mapping_strategy),
        objective=objective,
        tuner_trials=tuner_trials,
        tuner_early_stopping=tuner_early_stopping,
    )
    return StonneBifrostApi(
        config=config,
        mappings=mappings,
        params=params,
        executor=executor,
        cache_path=cache_path,
        max_workers=max_workers,
        workers=list(workers) if workers else None,
    )


def _annotate_layer_names(graph: Graph) -> None:
    """Give offloaded nodes their IR names so stats are attributable."""
    for node in graph.op_nodes():
        if node.op_name in ("conv2d", "dense"):
            node.attrs.setdefault("layer_name", node.name)


def run_graph(
    graph: Graph,
    feeds: Dict[str, np.ndarray],
    session: StonneBifrostApi,
    executor: Optional[str] = None,
) -> BifrostRunResult:
    """Execute ``graph`` with conv2d/dense offloaded to ``session``.

    The session is installed as the "stonne" target for the duration of
    the call and uninstalled afterwards, so parallel CPU-only execution
    elsewhere is unaffected.  ``executor`` overrides the session
    engine's backend for the call — batched work triggered during it
    (e.g. mapping tuning under the TUNED strategy) fans out through the
    named backend.
    """
    engine = session.engine
    previous_backend = engine.backend
    if executor is not None:
        # Resolved before any global state changes so an unknown backend
        # name fails cleanly; cached on the engine, so repeated calls
        # reuse one pool and engine.close() shuts it down.
        engine.backend = engine._resolve_backend(executor, engine.max_workers)
    _annotate_layer_names(graph)
    session.reset_stats()
    install_session(session)
    try:
        graph_executor = GraphExecutor(graph, make_offload_policy("stonne"))
        outputs = graph_executor.run(feeds)
    finally:
        uninstall_session()
        engine.backend = previous_backend
    return BifrostRunResult(outputs=outputs, layer_stats=list(session.stats))


def run_torch_stonne(
    model,
    input_batch: np.ndarray,
    session: StonneBifrostApi,
    input_shape: Optional[Tuple[int, ...]] = None,
) -> BifrostRunResult:
    """Listing 1's entry point: run a torch-like model on STONNE.

    ``model`` is a :mod:`repro.frontends.torchlike` module tree; the
    input batch's shape is used unless ``input_shape`` overrides it.
    """
    from repro.frontends.torchlike import from_torchlike

    shape = tuple(input_shape or np.asarray(input_batch).shape)
    graph = from_torchlike(model, shape)
    first_input = graph.nodes[graph.input_ids[0]].name
    return run_graph(graph, {first_input: np.asarray(input_batch)}, session)


def run_layers(
    layers,
    session: StonneBifrostApi,
    executor: Optional[str] = None,
) -> List[SimulationStats]:
    """Simulate bare layer descriptors (no tensors), for benchmarking.

    Accepts :class:`~repro.stonne.layer.ConvLayer` /
    :class:`~repro.stonne.layer.FcLayer` descriptors and returns one
    stats record per layer, honouring the session's mapping strategy.
    The whole batch is submitted to the session engine's
    :meth:`~repro.engine.EvaluationEngine.evaluate_many` — repeated
    shapes are served from the stats cache instead of re-simulated, and
    ``executor`` overrides the engine's backend for this batch
    ("serial"/"thread"/"process"/"remote" — the last fans the batch out
    across the session's fleet workers).
    """
    from repro.engine import EvalRequest
    from repro.stonne.layer import ConvLayer, FcLayer

    engine = session.engine
    requests: List[EvalRequest] = []
    for layer in layers:
        if not isinstance(layer, (ConvLayer, FcLayer)):
            raise TypeError(
                f"run_layers expects ConvLayer/FcLayer, got {type(layer).__name__}"
            )
        mapping = (
            session.mappings.mapping_for(layer) if engine.requires_mapping else None
        )
        requests.append(EvalRequest(layer=layer, mapping=mapping))
    results = engine.evaluate_many(requests, executor=executor)
    session.stats.extend(results)
    return results
