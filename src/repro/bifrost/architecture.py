"""The user-facing architecture object (Listing 1 of the paper).

Bifrost exposes simulator configuration as plain attribute assignment::

    from repro.bifrost import architecture
    architecture.maeri()
    architecture.ms_size = 128
    config = architecture.create_config_file()

``architecture`` is a module-level singleton, mirroring the paper's
``bifrost.simulator.architecture``; :meth:`Architecture.create_config_file`
runs the simulator configurator and caches the validated config the
runner will use.
"""

from __future__ import annotations

from typing import List, Optional

from repro.bifrost.configurator import SimulatorConfigurator
from repro.errors import ConfigError
from repro.stonne.config import ControllerType, ReduceNetworkType, SimulatorConfig
from repro.stonne.params import DEFAULT_DN_BW, DEFAULT_MS_SIZE, DEFAULT_RN_BW


class Architecture:
    """Mutable architecture settings with a ``create_config_file`` step."""

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Back to the defaults (MAERI, 128 multipliers)."""
        self.controller_type: ControllerType = ControllerType.MAERI_DENSE_WORKLOAD
        self.ms_size: int = DEFAULT_MS_SIZE
        self.ms_rows: int = 16
        self.ms_cols: int = 16
        self.dn_bw: int = DEFAULT_DN_BW
        self.rn_bw: int = DEFAULT_RN_BW
        self.reduce_network_type: Optional[ReduceNetworkType] = None
        self.sparsity_ratio: int = 0
        self.accumulation_buffer: bool = True
        self._config: Optional[SimulatorConfig] = None
        self._corrections: List[str] = []

    # ------------------------------------------------------------------
    # architecture presets
    # ------------------------------------------------------------------
    def maeri(self) -> "Architecture":
        """Select the MAERI architecture (dense: clears any sparsity)."""
        self.controller_type = ControllerType.MAERI_DENSE_WORKLOAD
        self.sparsity_ratio = 0
        self._config = None
        return self

    def sigma(self, sparsity_ratio: int = 0) -> "Architecture":
        """Select the SIGMA architecture at the given weight sparsity."""
        self.controller_type = ControllerType.SIGMA_SPARSE_GEMM
        self.sparsity_ratio = sparsity_ratio
        self._config = None
        return self

    def magma(self, sparsity_ratio: int = 0) -> "Architecture":
        """Select the MAGMA (sparse-dense GEMM) architecture (§IX)."""
        self.controller_type = ControllerType.MAGMA_SPARSE_DENSE
        self.sparsity_ratio = sparsity_ratio
        self._config = None
        return self

    def tpu(self, ms_rows: int = 16, ms_cols: int = 16) -> "Architecture":
        """Select the TPU architecture (dense: clears any sparsity)."""
        self.controller_type = ControllerType.TPU_OS_DENSE
        self.ms_rows = ms_rows
        self.ms_cols = ms_cols
        self.sparsity_ratio = 0
        self._config = None
        return self

    # ------------------------------------------------------------------
    def create_config_file(self) -> SimulatorConfig:
        """Validate the current settings into a simulator config.

        The name mirrors STONNE's workflow step ("create hardware config
        files") that Bifrost automates; no file is written unless
        :meth:`save` is called.
        """
        configurator = SimulatorConfigurator(
            controller_type=self.controller_type,
            ms_size=self.ms_size,
            ms_rows=self.ms_rows,
            ms_cols=self.ms_cols,
            dn_bw=self.dn_bw,
            rn_bw=self.rn_bw,
            reduce_network_type=self.reduce_network_type,
            sparsity_ratio=self.sparsity_ratio,
            accumulation_buffer=self.accumulation_buffer,
        )
        self._config = configurator.build()
        self._corrections = list(configurator.corrections)
        return self._config

    @property
    def config(self) -> SimulatorConfig:
        """The validated config; builds one on first access."""
        if self._config is None:
            return self.create_config_file()
        return self._config

    @property
    def corrections(self) -> List[str]:
        """Auto-corrections applied by the last ``create_config_file``."""
        return list(self._corrections)

    def save(self, path) -> None:
        """Write the validated config as JSON (STONNE's config-file form)."""
        from pathlib import Path

        Path(path).write_text(self.config.to_json() + "\n")


#: The module-level singleton of Listing 1.
architecture = Architecture()
