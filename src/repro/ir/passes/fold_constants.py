"""Constant folding: evaluate op nodes whose inputs are all constants."""

from __future__ import annotations

from repro.ir.graph import Graph
from repro.topi.registry import has_op, lookup_op


def fold_constants(graph: Graph) -> int:
    """Replace all-constant op nodes with precomputed const nodes.

    Evaluation uses the CPU strategy of each operator; ops without a CPU
    implementation are left alone.  Returns the number of folds applied.
    """
    folded = 0
    for node in graph.op_nodes():
        assert node.op_name is not None
        if not has_op(node.op_name, "cpu"):
            continue
        if not all(graph.nodes[ref].kind == "const" for ref in node.inputs):
            continue
        inputs = [graph.params[ref] for ref in node.inputs]
        value = lookup_op(node.op_name, "cpu")(node.attrs, inputs)
        # Rewrite the node in place into a constant.
        node.kind = "const"
        node.name = f"{node.name}.folded"
        node.op_name = None
        node.inputs = ()
        node.attrs = {}
        graph.params[node.node_id] = value
        folded += 1
    return folded
