"""Batch-norm fusion: fold inference BN into the preceding convolution.

Matches the patterns ``bn(conv2d(x, W))`` and ``bn(bias_add(conv2d(x, W),
b))`` and rewrites the convolution's weights (and bias) so the batch norm
becomes the identity and is removed.  This is the canonical graph-level
optimization TVM applies that Bifrost inherits (§IV).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.ir.graph import Graph, Node
from repro.topi.normalization import fold_batch_norm_into_conv


def _producer(graph: Graph, node: Node, index: int = 0) -> Node:
    return graph.nodes[node.inputs[index]]


def _match_conv_chain(graph: Graph, bn: Node) -> Optional[dict]:
    """Match bn -> [bias_add ->] conv2d with single-use intermediates."""
    pred = _producer(graph, bn)
    bias_add = None
    if pred.is_op("bias_add"):
        bias_add = pred
        pred = _producer(graph, bias_add)
    if not pred.is_op("conv2d"):
        return None
    conv = pred
    if conv.attrs.get("groups", 1) != 1:
        return None  # grouped conv folding not supported
    # Intermediates must feed only this chain, or folding changes others.
    if len(graph.consumers(conv.node_id)) != 1:
        return None
    if bias_add is not None and len(graph.consumers(bias_add.node_id)) != 1:
        return None
    weight_node = graph.nodes[conv.inputs[1]]
    if weight_node.kind != "const":
        return None
    if bias_add is not None and graph.nodes[bias_add.inputs[1]].kind != "const":
        return None
    return {"conv": conv, "bias_add": bias_add, "weight": weight_node}


def fold_batch_norms(graph: Graph) -> int:
    """Fold every foldable batch norm; returns the number folded."""
    folded = 0
    for bn in graph.op_nodes("batch_norm"):
        match = _match_conv_chain(graph, bn)
        if match is None:
            continue
        gamma, beta, mean, var = (graph.params[ref] for ref in bn.inputs[1:])
        if any(graph.nodes[ref].kind != "const" for ref in bn.inputs[1:]):
            continue
        conv: Node = match["conv"]
        weight_node: Node = match["weight"]
        bias_add: Optional[Node] = match["bias_add"]

        weights = graph.params[weight_node.node_id]
        if bias_add is not None:
            bias = graph.params[bias_add.inputs[1]]
        else:
            bias = np.zeros(weights.shape[0])

        new_weights, new_bias = fold_batch_norm_into_conv(
            weights, bias, gamma, beta, mean, var,
            epsilon=bn.attrs.get("epsilon", 1e-5),
        )
        graph.params[weight_node.node_id] = new_weights

        if bias_add is not None:
            graph.params[bias_add.inputs[1]] = new_bias
            tail_id = bias_add.node_id
        else:
            # Materialize a bias_add carrying the folded shift by rewriting
            # the batch_norm node itself (keeps ids stable).
            bias_const = graph.nodes[bn.inputs[1]]
            bias_const.kind = "const"
            bias_const.name = f"{conv.name}.folded_bias"
            graph.params[bias_const.node_id] = new_bias
            bn.op_name = "bias_add"
            bn.name = f"{conv.name}.bias_add"
            bn.inputs = (conv.node_id, bias_const.node_id)
            bn.attrs = {"axis": bn.attrs.get("axis", 1)}
            folded += 1
            continue

        # Turn the batch_norm into the identity by splicing consumers.
        for consumer in graph.consumers(bn.node_id):
            consumer.inputs = tuple(
                tail_id if ref == bn.node_id else ref for ref in consumer.inputs
            )
        graph.output_ids = [
            tail_id if ref == bn.node_id else ref for ref in graph.output_ids
        ]
        del graph.nodes[bn.node_id]
        folded += 1
    return folded
