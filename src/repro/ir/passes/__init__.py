"""Graph-level optimization passes."""

from repro.ir.passes.dead_code import eliminate_dead_code
from repro.ir.passes.fold_constants import fold_constants
from repro.ir.passes.fuse import fold_batch_norms
from repro.ir.passes.pass_manager import (
    PassManager,
    PassResult,
    default_pipeline,
    optimize,
)

__all__ = [
    "PassManager",
    "PassResult",
    "default_pipeline",
    "eliminate_dead_code",
    "fold_batch_norms",
    "fold_constants",
    "optimize",
]
