"""Dead-code elimination: drop nodes unreachable from the outputs."""

from __future__ import annotations

from typing import Set

from repro.ir.graph import Graph


def eliminate_dead_code(graph: Graph) -> int:
    """Remove nodes (and their parameters) no output depends on.

    Declared graph inputs are kept even when unused, so the runtime
    signature stays stable.  Returns the number of nodes removed.
    """
    live: Set[int] = set()
    stack = list(graph.output_ids)
    while stack:
        node_id = stack.pop()
        if node_id in live:
            continue
        live.add(node_id)
        stack.extend(graph.nodes[node_id].inputs)

    dead = [
        node_id
        for node_id in graph.nodes
        if node_id not in live and node_id not in graph.input_ids
    ]
    for node_id in dead:
        del graph.nodes[node_id]
        graph.params.pop(node_id, None)
    return len(dead)
