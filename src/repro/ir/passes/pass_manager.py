"""Graph-level optimization passes and their driver.

Passes mutate a graph in place and must leave it valid; the
:class:`PassManager` re-runs shape inference after each pass and reports
what changed.  The default pipeline mirrors what Bifrost relies on from
TVM (§IV): batch-norm fusion, constant folding, dead-code elimination.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List

from repro.ir.graph import Graph

#: A pass is a callable Graph -> int (number of rewrites applied).
GraphPass = Callable[[Graph], int]


@dataclass
class PassResult:
    """Outcome of one pass application."""

    name: str
    rewrites: int


@dataclass
class PassManager:
    """Runs a pipeline of graph passes until fixpoint (or one sweep)."""

    passes: List[GraphPass] = field(default_factory=list)
    max_rounds: int = 5

    def add(self, graph_pass: GraphPass) -> "PassManager":
        self.passes.append(graph_pass)
        return self

    def run(self, graph: Graph) -> List[PassResult]:
        """Apply every pass, iterating until nothing changes."""
        results: List[PassResult] = []
        for _ in range(self.max_rounds):
            round_rewrites = 0
            for graph_pass in self.passes:
                count = graph_pass(graph)
                round_rewrites += count
                results.append(
                    PassResult(name=graph_pass.__name__, rewrites=count)
                )
                if count:
                    graph.infer_types()
            if round_rewrites == 0:
                break
        return results


def default_pipeline() -> PassManager:
    """The standard optimization pipeline Bifrost applies before offload."""
    from repro.ir.passes.dead_code import eliminate_dead_code
    from repro.ir.passes.fold_constants import fold_constants
    from repro.ir.passes.fuse import fold_batch_norms

    return PassManager(
        passes=[fold_batch_norms, fold_constants, eliminate_dead_code]
    )


def optimize(graph: Graph) -> Graph:
    """Run the default pipeline over ``graph`` and return it."""
    default_pipeline().run(graph)
    return graph
