"""Operator declarations and shape functions for the graph IR.

Every operator the IR admits is declared here with:

* its arity (number of tensor inputs);
* a *shape function* inferring the output :class:`TensorType` from the
  input types and the node attributes.

The executor separately resolves implementations through the
:mod:`repro.topi.registry` strategy table; keeping declaration and
implementation apart is what lets the "stonne" target override just
conv2d/dense while everything else stays on the CPU.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.errors import ShapeInferenceError
from repro.ir.tensor_type import TensorType
from repro.topi.conv2d import conv2d_output_shape

_ShapeFn = Callable[[List[TensorType], dict], TensorType]


@dataclass(frozen=True)
class OpDecl:
    """A declared operator: name, arity and shape function."""

    name: str
    arity: int
    shape_fn: _ShapeFn


_OPS: Dict[str, OpDecl] = {}


def declare_op(name: str, arity: int):
    """Decorator declaring an operator with the wrapped shape function."""

    def decorator(fn: _ShapeFn) -> _ShapeFn:
        if name in _OPS:
            raise ShapeInferenceError(f"operator {name!r} already declared")
        _OPS[name] = OpDecl(name=name, arity=arity, shape_fn=fn)
        return fn

    return decorator


def get_op(name: str) -> OpDecl:
    try:
        return _OPS[name]
    except KeyError:
        raise ShapeInferenceError(f"unknown operator {name!r}") from None


def is_op(name: str) -> bool:
    return name in _OPS


def all_ops() -> List[str]:
    return sorted(_OPS)


def _same_as_first(types: List[TensorType], attrs: dict) -> TensorType:
    return types[0]


@declare_op("conv2d", 2)
def _conv2d_shape(types: List[TensorType], attrs: dict) -> TensorType:
    data, weight = types
    layout = attrs.get("data_layout", "NCHW")
    if data.rank != 4 or weight.rank != 4:
        raise ShapeInferenceError(
            f"conv2d expects 4-D data and weights, got {data} and {weight}"
        )
    if layout == "NCHW":
        data_shape = data.shape
        weight_shape = weight.shape  # KCRS
    elif layout == "NHWC":
        n, h, w, c = data.shape
        r, s, cg, k = weight.shape  # RSCK
        data_shape = (n, c, h, w)
        weight_shape = (k, cg, r, s)
    else:
        raise ShapeInferenceError(f"conv2d: unsupported layout {layout!r}")
    n, k, p, q = conv2d_output_shape(
        data_shape,
        weight_shape,
        strides=tuple(attrs.get("strides", (1, 1))),
        padding=tuple(attrs.get("padding", (0, 0))),
        dilation=tuple(attrs.get("dilation", (1, 1))),
        groups=attrs.get("groups", 1),
    )
    shape = (n, k, p, q) if layout == "NCHW" else (n, p, q, k)
    return TensorType(shape, data.dtype)


@declare_op("dense", 2)
def _dense_shape(types: List[TensorType], attrs: dict) -> TensorType:
    data, weight = types
    if data.rank != 2 or weight.rank != 2:
        raise ShapeInferenceError(
            f"dense expects 2-D data and weights, got {data} and {weight}"
        )
    if data.shape[1] != weight.shape[1]:
        raise ShapeInferenceError(
            f"dense reduction mismatch: {data} vs {weight}"
        )
    return TensorType((data.shape[0], weight.shape[0]), data.dtype)


@declare_op("matmul", 2)
def _matmul_shape(types: List[TensorType], attrs: dict) -> TensorType:
    a, b = types
    if a.rank != 2 or b.rank != 2 or a.shape[1] != b.shape[0]:
        raise ShapeInferenceError(f"matmul shape mismatch: {a} @ {b}")
    return TensorType((a.shape[0], b.shape[1]), a.dtype)


@declare_op("bias_add", 2)
def _bias_add_shape(types: List[TensorType], attrs: dict) -> TensorType:
    data, bias = types
    axis = attrs.get("axis", -1) % data.rank
    if bias.rank != 1 or bias.shape[0] != data.shape[axis]:
        raise ShapeInferenceError(
            f"bias_add: bias {bias} does not match axis {axis} of {data}"
        )
    return data


def _pool2d_shape(types: List[TensorType], attrs: dict) -> TensorType:
    data = types[0]
    if data.rank != 4:
        raise ShapeInferenceError(f"pooling expects NCHW input, got {data}")
    r, s = attrs.get("pool_size", (2, 2))
    stride_h, stride_w = attrs.get("strides", (2, 2))
    pad_h, pad_w = attrs.get("padding", (0, 0))
    n, c, h, w = data.shape
    p = (h + 2 * pad_h - r) // stride_h + 1
    q = (w + 2 * pad_w - s) // stride_w + 1
    if p < 1 or q < 1:
        raise ShapeInferenceError(
            f"pooling output would be empty for input {data} window ({r},{s})"
        )
    return TensorType((n, c, p, q), data.dtype)


declare_op("max_pool2d", 1)(_pool2d_shape)
declare_op("avg_pool2d", 1)(_pool2d_shape)


@declare_op("adaptive_avg_pool2d", 1)
def _adaptive_pool_shape(types: List[TensorType], attrs: dict) -> TensorType:
    data = types[0]
    if data.rank != 4:
        raise ShapeInferenceError(f"pooling expects NCHW input, got {data}")
    out_h, out_w = attrs["output_size"]
    return TensorType((data.shape[0], data.shape[1], out_h, out_w), data.dtype)


@declare_op("flatten", 1)
def _flatten_shape(types: List[TensorType], attrs: dict) -> TensorType:
    data = types[0]
    if data.rank < 2:
        raise ShapeInferenceError(f"flatten expects >= 2-D input, got {data}")
    rest = 1
    for dim in data.shape[1:]:
        rest *= dim
    return TensorType((data.shape[0], rest), data.dtype)


@declare_op("reshape", 1)
def _reshape_shape(types: List[TensorType], attrs: dict) -> TensorType:
    data = types[0]
    newshape = tuple(attrs["newshape"])
    total = 1
    for dim in newshape:
        total *= dim
    if total != data.num_elements:
        raise ShapeInferenceError(
            f"reshape to {newshape} does not preserve {data.num_elements} elements"
        )
    return TensorType(newshape, data.dtype)


@declare_op("batch_norm", 5)
def _batch_norm_shape(types: List[TensorType], attrs: dict) -> TensorType:
    data = types[0]
    axis = attrs.get("axis", 1)
    channels = data.shape[axis]
    for i, name in enumerate(("gamma", "beta", "mean", "var"), start=1):
        if types[i].shape != (channels,):
            raise ShapeInferenceError(
                f"batch_norm {name} {types[i]} does not match {channels} channels"
            )
    return data


@declare_op("add", 2)
def _add_shape(types: List[TensorType], attrs: dict) -> TensorType:
    a, b = types
    if a.shape != b.shape:
        raise ShapeInferenceError(f"add shape mismatch: {a} vs {b}")
    return a


@declare_op("multiply", 2)
def _multiply_shape(types: List[TensorType], attrs: dict) -> TensorType:
    a, b = types
    if a.shape != b.shape:
        raise ShapeInferenceError(f"multiply shape mismatch: {a} vs {b}")
    return a


for _name in (
    "relu", "leaky_relu", "sigmoid", "tanh",
    "softmax", "log_softmax", "dropout", "lrn",
):
    declare_op(_name, 1)(_same_as_first)
