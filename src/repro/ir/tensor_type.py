"""Tensor types for the graph IR: a shape plus a dtype string."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ShapeInferenceError

_SUPPORTED_DTYPES = ("float32", "float64", "int32", "int64")


@dataclass(frozen=True)
class TensorType:
    """A statically known tensor type.

    Shapes are tuples of positive ints; scalars are ``()``.
    """

    shape: Tuple[int, ...]
    dtype: str = "float64"

    def __post_init__(self) -> None:
        if self.dtype not in _SUPPORTED_DTYPES:
            raise ShapeInferenceError(
                f"unsupported dtype {self.dtype!r}; expected one of {_SUPPORTED_DTYPES}"
            )
        shape = tuple(int(dim) for dim in self.shape)
        for dim in shape:
            if dim < 1:
                raise ShapeInferenceError(
                    f"tensor dimensions must be >= 1, got shape {self.shape}"
                )
        object.__setattr__(self, "shape", shape)

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        total = 1
        for dim in self.shape:
            total *= dim
        return total

    def __str__(self) -> str:
        dims = ", ".join(str(d) for d in self.shape)
        return f"Tensor[({dims}), {self.dtype}]"
