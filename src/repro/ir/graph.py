"""The graph IR: a validated DAG of operator nodes (Relay stand-in).

A :class:`Graph` contains three node kinds:

* ``input`` — a runtime-provided tensor with a declared type;
* ``const`` — a parameter tensor baked into the graph;
* ``op`` — an operator application over other nodes.

Graphs are append-only during construction and validated on
:meth:`Graph.finalize`: single assignment per node id, acyclicity by
construction (nodes may only reference earlier ids), declared arity, and
complete shape inference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.errors import GraphError, ShapeInferenceError
from repro.ir.op import get_op, is_op
from repro.ir.tensor_type import TensorType


@dataclass
class Node:
    """One node of the DAG.  ``inputs`` holds the ids of producer nodes."""

    node_id: int
    kind: str  # "input" | "const" | "op"
    name: str
    op_name: Optional[str] = None
    inputs: Tuple[int, ...] = ()
    attrs: Dict[str, object] = field(default_factory=dict)
    ttype: Optional[TensorType] = None

    def is_op(self, op_name: Optional[str] = None) -> bool:
        if self.kind != "op":
            return False
        return op_name is None or self.op_name == op_name


class Graph:
    """A DAG of operator nodes with named inputs and parameters."""

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: Dict[int, Node] = {}
        self.params: Dict[int, np.ndarray] = {}
        self.input_ids: List[int] = []
        self.output_ids: List[int] = []
        self._next_id = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _new_node(self, node: Node) -> int:
        if self._finalized:
            raise GraphError(f"graph {self.name!r} is finalized; cannot add nodes")
        self.nodes[node.node_id] = node
        return node.node_id

    def add_input(self, name: str, ttype: TensorType) -> int:
        """Declare a runtime input; returns its node id."""
        node_id = self._alloc_id()
        self._new_node(Node(node_id, "input", name, ttype=ttype))
        self.input_ids.append(node_id)
        return node_id

    def add_const(self, name: str, value: np.ndarray) -> int:
        """Bake a parameter tensor into the graph; returns its node id."""
        value = np.asarray(value, dtype=np.float64)
        if value.ndim == 0:
            raise GraphError(f"constant {name!r} must have rank >= 1")
        node_id = self._alloc_id()
        self._new_node(
            Node(node_id, "const", name, ttype=TensorType(value.shape))
        )
        self.params[node_id] = value
        return node_id

    def add_op(
        self,
        op_name: str,
        inputs: Iterable[int],
        attrs: Optional[Dict[str, object]] = None,
        name: Optional[str] = None,
    ) -> int:
        """Apply an operator over existing nodes; returns the new node id."""
        if not is_op(op_name):
            raise GraphError(f"unknown operator {op_name!r}")
        input_ids = tuple(inputs)
        decl = get_op(op_name)
        if len(input_ids) != decl.arity:
            raise GraphError(
                f"operator {op_name!r} expects {decl.arity} inputs, "
                f"got {len(input_ids)}"
            )
        for ref in input_ids:
            if ref not in self.nodes:
                raise GraphError(
                    f"operator {op_name!r} references unknown node {ref}"
                )
        node_id = self._alloc_id()
        node = Node(
            node_id,
            "op",
            name or f"{op_name}_{node_id}",
            op_name=op_name,
            inputs=input_ids,
            attrs=dict(attrs or {}),
        )
        # Eager shape inference: construction order is topological, so the
        # producers are always typed already.  Builders rely on this to
        # inspect the running output type.
        in_types = [self.nodes[ref].ttype for ref in input_ids]
        if all(t is not None for t in in_types):
            node.ttype = decl.shape_fn(in_types, node.attrs)
        self._new_node(node)
        return node_id

    def set_outputs(self, output_ids: Iterable[int]) -> None:
        ids = list(output_ids)
        if not ids:
            raise GraphError("a graph needs at least one output")
        for ref in ids:
            if ref not in self.nodes:
                raise GraphError(f"output references unknown node {ref}")
        self.output_ids = ids

    def _alloc_id(self) -> int:
        node_id = self._next_id
        self._next_id += 1
        return node_id

    # ------------------------------------------------------------------
    # validation / inference
    # ------------------------------------------------------------------
    def infer_types(self) -> None:
        """Run shape inference over the whole graph in topological order."""
        for node in self.topological_order():
            if node.kind in ("input", "const"):
                if node.ttype is None:
                    raise ShapeInferenceError(
                        f"{node.kind} node {node.name!r} has no declared type"
                    )
                continue
            in_types = []
            for ref in node.inputs:
                ttype = self.nodes[ref].ttype
                if ttype is None:
                    raise ShapeInferenceError(
                        f"node {node.name!r} depends on untyped node {ref}"
                    )
                in_types.append(ttype)
            assert node.op_name is not None
            node.ttype = get_op(node.op_name).shape_fn(in_types, node.attrs)

    def finalize(self) -> "Graph":
        """Validate the graph and freeze it; returns self for chaining."""
        if not self.output_ids:
            raise GraphError(f"graph {self.name!r} has no outputs")
        self.infer_types()
        self._finalized = True
        return self

    # ------------------------------------------------------------------
    # traversal
    # ------------------------------------------------------------------
    def topological_order(self) -> List[Node]:
        """Nodes in dependency order (construction order is topological)."""
        return [self.nodes[node_id] for node_id in sorted(self.nodes)]

    def consumers(self, node_id: int) -> List[Node]:
        """Every op node that reads ``node_id``."""
        return [
            node
            for node in self.nodes.values()
            if node.kind == "op" and node_id in node.inputs
        ]

    def op_nodes(self, op_name: Optional[str] = None) -> List[Node]:
        """All op nodes, optionally filtered by operator name."""
        return [n for n in self.topological_order() if n.is_op(op_name)]

    def describe(self) -> str:
        """Readable multi-line dump of the graph."""
        lines = [f"graph {self.name!r}:"]
        for node in self.topological_order():
            ttype = str(node.ttype) if node.ttype else "?"
            if node.kind == "op":
                refs = ", ".join(f"%{i}" for i in node.inputs)
                lines.append(
                    f"  %{node.node_id} = {node.op_name}({refs}) {node.attrs or ''} : {ttype}"
                )
            else:
                lines.append(f"  %{node.node_id} = {node.kind} {node.name!r} : {ttype}")
        outs = ", ".join(f"%{i}" for i in self.output_ids)
        lines.append(f"  outputs: {outs}")
        return "\n".join(lines)
