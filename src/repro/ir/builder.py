"""Fluent sequential-model builder over the graph IR.

Most DNNs in the paper's evaluation are simple feed-forward stacks;
:class:`GraphBuilder` keeps a "current" node and appends layers to it,
which is how the model zoo (:mod:`repro.models`) defines networks.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import GraphError
from repro.ir.graph import Graph
from repro.ir.tensor_type import TensorType


class GraphBuilder:
    """Builds a single-input, single-output feed-forward graph."""

    def __init__(self, name: str, input_shape: Tuple[int, ...]) -> None:
        self.graph = Graph(name)
        self._rng = np.random.default_rng(0)
        self._current = self.graph.add_input("data", TensorType(input_shape))
        self._layer_index = 0

    # ------------------------------------------------------------------
    @property
    def current(self) -> int:
        """Node id the next layer will consume."""
        return self._current

    def _param(self, name: str, shape: Tuple[int, ...], scale: float = 0.05) -> int:
        """A deterministic random parameter (seeded builder RNG)."""
        value = self._rng.normal(0.0, scale, size=shape)
        return self.graph.add_const(name, value)

    def _advance(self, node_id: int) -> "GraphBuilder":
        self._current = node_id
        self._layer_index += 1
        return self

    # ------------------------------------------------------------------
    # layers
    # ------------------------------------------------------------------
    def conv2d(
        self,
        channels: int,
        kernel_size: Tuple[int, int],
        strides: Tuple[int, int] = (1, 1),
        padding: Tuple[int, int] = (0, 0),
        groups: int = 1,
        bias: bool = True,
        name: Optional[str] = None,
    ) -> "GraphBuilder":
        """Append an NCHW conv2d (+ optional bias_add) layer."""
        in_type = self.graph.nodes[self._current].ttype
        assert in_type is not None
        if in_type.rank != 4:
            raise GraphError(f"conv2d needs a 4-D input, current is {in_type}")
        c_in = in_type.shape[1]
        if c_in % groups:
            raise GraphError(f"groups={groups} does not divide channels {c_in}")
        layer = name or f"conv{self._layer_index}"
        weight = self._param(
            f"{layer}.weight", (channels, c_in // groups, *kernel_size)
        )
        node = self.graph.add_op(
            "conv2d",
            [self._current, weight],
            attrs={
                "strides": strides,
                "padding": padding,
                "dilation": (1, 1),
                "groups": groups,
                "data_layout": "NCHW",
                "kernel_layout": "KCRS",
            },
            name=layer,
        )
        if bias:
            b = self._param(f"{layer}.bias", (channels,))
            node = self.graph.add_op(
                "bias_add", [node, b], attrs={"axis": 1}, name=f"{layer}.bias_add"
            )
        return self._advance(node)

    def dense(
        self, units: int, bias: bool = True, name: Optional[str] = None
    ) -> "GraphBuilder":
        """Append a dense (+ optional bias_add) layer."""
        in_type = self.graph.nodes[self._current].ttype
        assert in_type is not None
        if in_type.rank != 2:
            raise GraphError(f"dense needs a 2-D input, current is {in_type}")
        layer = name or f"fc{self._layer_index}"
        weight = self._param(f"{layer}.weight", (units, in_type.shape[1]))
        node = self.graph.add_op("dense", [self._current, weight], name=layer)
        if bias:
            b = self._param(f"{layer}.bias", (units,))
            node = self.graph.add_op(
                "bias_add", [node, b], attrs={"axis": -1}, name=f"{layer}.bias_add"
            )
        return self._advance(node)

    def batch_norm(self, name: Optional[str] = None) -> "GraphBuilder":
        """Append inference-mode batch normalization on the channel axis."""
        in_type = self.graph.nodes[self._current].ttype
        assert in_type is not None
        channels = in_type.shape[1]
        layer = name or f"bn{self._layer_index}"
        rng = self._rng
        gamma = self.graph.add_const(f"{layer}.gamma", rng.uniform(0.5, 1.5, channels))
        beta = self.graph.add_const(f"{layer}.beta", rng.normal(0, 0.1, channels))
        mean = self.graph.add_const(f"{layer}.mean", rng.normal(0, 0.1, channels))
        var = self.graph.add_const(f"{layer}.var", rng.uniform(0.5, 1.5, channels))
        node = self.graph.add_op(
            "batch_norm",
            [self._current, gamma, beta, mean, var],
            attrs={"axis": 1, "epsilon": 1e-5},
            name=layer,
        )
        return self._advance(node)

    def _unary(self, op_name: str, attrs: Optional[dict] = None) -> "GraphBuilder":
        node = self.graph.add_op(
            op_name, [self._current], attrs=attrs or {},
            name=f"{op_name}{self._layer_index}",
        )
        return self._advance(node)

    def relu(self) -> "GraphBuilder":
        return self._unary("relu")

    def lrn(self, size: int = 5, alpha: float = 1e-4, beta: float = 0.75,
            k: float = 2.0) -> "GraphBuilder":
        return self._unary("lrn", {"size": size, "alpha": alpha, "beta": beta, "k": k})

    def dropout(self) -> "GraphBuilder":
        return self._unary("dropout")

    def softmax(self) -> "GraphBuilder":
        return self._unary("softmax", {"axis": -1})

    def max_pool2d(
        self,
        pool_size: Tuple[int, int] = (2, 2),
        strides: Tuple[int, int] = (2, 2),
        padding: Tuple[int, int] = (0, 0),
    ) -> "GraphBuilder":
        return self._unary(
            "max_pool2d",
            {"pool_size": pool_size, "strides": strides, "padding": padding},
        )

    def avg_pool2d(
        self,
        pool_size: Tuple[int, int] = (2, 2),
        strides: Tuple[int, int] = (2, 2),
        padding: Tuple[int, int] = (0, 0),
    ) -> "GraphBuilder":
        return self._unary(
            "avg_pool2d",
            {"pool_size": pool_size, "strides": strides, "padding": padding},
        )

    def adaptive_avg_pool2d(self, output_size: Tuple[int, int]) -> "GraphBuilder":
        return self._unary("adaptive_avg_pool2d", {"output_size": output_size})

    def flatten(self) -> "GraphBuilder":
        return self._unary("flatten")

    # ------------------------------------------------------------------
    def build(self) -> Graph:
        """Finalize and return the graph (validates + infers shapes)."""
        self.graph.set_outputs([self._current])
        return self.graph.finalize()
