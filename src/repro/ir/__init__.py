"""Graph IR (Relay stand-in): typed operator DAGs, builder, passes."""

from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph, Node
from repro.ir.op import all_ops, get_op, is_op
from repro.ir.passes import optimize
from repro.ir.tensor_type import TensorType

__all__ = [
    "Graph",
    "GraphBuilder",
    "Node",
    "TensorType",
    "all_ops",
    "get_op",
    "is_op",
    "optimize",
]
