"""Canonical benchmark workloads used across the evaluation.

Centralizes the exact layer parameters the benchmarks reference so every
bench and test agrees on them.
"""

from __future__ import annotations

from typing import List

from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer


def fig10_conv() -> ConvLayer:
    """The small convolution of Figure 10.

    The paper specifies a 1x2x10x10 NCHW input with random data; the
    filter shape is unspecified, so we fix K=8 filters of 3x3 (stride 1,
    no padding) and document the choice in DESIGN.md.
    """
    return ConvLayer("fig10", C=2, H=10, W=10, K=8, R=3, S=3)


def tiny_conv() -> ConvLayer:
    """A minimal conv workload for unit tests."""
    return ConvLayer("tiny_conv", C=2, H=6, W=6, K=4, R=3, S=3)


def tiny_fc() -> FcLayer:
    """A minimal dense workload for unit tests."""
    return FcLayer("tiny_fc", in_features=32, out_features=16)


def medium_gemm() -> GemmLayer:
    """A mid-size GEMM for SIGMA/TPU tests."""
    return GemmLayer("medium_gemm", M=64, K=256, N=32)


def multiplier_sweep() -> List[int]:
    """The multiplier counts Figure 10 sweeps."""
    return [8, 16, 32, 64, 128]


def sparsity_sweep() -> List[int]:
    """The sparsity levels of Figure 9 (percent)."""
    return [0, 50]
