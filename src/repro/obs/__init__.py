"""repro.obs — observability: span tracing and a metrics registry.

Two pillars:

* :mod:`repro.obs.trace` — a process-global span tracer (``TRACER``)
  with a no-op fast path when disabled, plus Chrome trace-event
  export and a human summary.  Enable with ``--trace`` (the
  ``[observability]`` config section); the session writes the trace
  file on close.
* :mod:`repro.obs.metrics` — typed counters / gauges / histograms
  that absorb the scheduler counters, per-tier cache hit rates,
  simulations/sec throughput and fleet per-worker health, and
  serialise into the ``metrics`` section of run/sweep reports.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.trace import (
    CATEGORIES,
    TRACE_VERSION,
    TRACER,
    Tracer,
    chrome_events,
    get_tracer,
    read_trace,
    spans_from_document,
    summarize_spans,
    trace_document,
    write_trace,
)

__all__ = [
    "CATEGORIES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACER",
    "TRACE_VERSION",
    "Tracer",
    "chrome_events",
    "get_tracer",
    "read_trace",
    "spans_from_document",
    "summarize_spans",
    "trace_document",
    "write_trace",
]
