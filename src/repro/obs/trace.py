"""Low-overhead span tracer with Chrome trace-event export.

The tracer is a process-global singleton (``TRACER``) recording
nestable, thread-safe spans on a monotonic clock
(``time.perf_counter``).  Every span carries a name, a category (the
stack tier that emitted it: ``session`` / ``sweep`` / ``engine`` /
``scheduler`` / ``cache`` / ``fleet``), a *lane* (the horizontal row
it lands on in a Chrome trace — by default the emitting thread's
name, or an explicit lane such as ``slot-3`` for a scheduler slot),
and free-form attributes.

The contract that keeps instrumentation essentially free when
tracing is off: ``Tracer.span`` checks one attribute and returns a
cached no-op context manager, so a disabled call site costs a method
call and nothing else — no allocation, no lock, no clock read.  The
``bench_obs_overhead`` benchmark holds this under 2% of wall time on
``bench_kernels``-scale work.

Trace files written by :func:`write_trace` are valid Chrome
trace-event JSON (load them in ``chrome://tracing`` or Perfetto —
both ignore the extra top-level keys) *and* carry the raw span list
under ``reproTrace`` so ``repro trace summary`` can recompute
self-time without lossy round-tripping through the event form.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, List, Optional

#: Schema version of the ``reproTrace`` section in saved trace files.
TRACE_VERSION = 1

#: Span categories, one per stack tier (used by smoke checks).
CATEGORIES = (
    "session", "sweep", "engine", "scheduler", "cache", "fleet", "serve",
)


class _NullSpan:
    """The disabled fast path: a single cached, do-nothing span."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> "_NullSpan":
        return self


_NULL_SPAN = _NullSpan()


class _Span:
    """A live span; records itself on the owning tracer at exit."""

    __slots__ = ("_tracer", "name", "category", "lane", "attrs",
                 "_start", "_child_s", "_depth")

    def __init__(self, tracer: "Tracer", name: str, category: str,
                 lane: Optional[str], attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.category = category
        self.lane = lane
        self.attrs = attrs
        self._start = 0.0
        self._child_s = 0.0
        self._depth = 0

    def set(self, **attrs: Any) -> "_Span":
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "_Span":
        stack = self._tracer._stack()
        self._depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        if stack and stack[-1] is self:
            stack.pop()
        duration = end - self._start
        if stack:
            stack[-1]._child_s += duration
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        tracer._record({
            "name": self.name,
            "cat": self.category,
            "lane": self.lane or threading.current_thread().name,
            "ts": self._start - tracer._epoch,
            "dur": duration,
            "self": max(duration - self._child_s, 0.0),
            "depth": self._depth,
            "kind": "span",
            "args": self.attrs,
        })
        return False


class Tracer:
    """Thread-safe span recorder with a no-op path when disabled."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._spans: List[Dict[str, Any]] = []
        self._local = threading.local()
        self._epoch = time.perf_counter()

    # -- lifecycle -------------------------------------------------------
    def enable(self) -> None:
        with self._lock:
            self._spans = []
            self._epoch = time.perf_counter()
            self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._spans = []
            self._epoch = time.perf_counter()

    # -- recording -------------------------------------------------------
    def span(self, name: str, category: str = "repro",
             lane: Optional[str] = None, **attrs: Any):
        """Context manager timing a span; a cached no-op when disabled."""
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, category, lane, attrs)

    def instant(self, name: str, category: str = "repro",
                lane: Optional[str] = None, **attrs: Any) -> None:
        """Record a zero-duration marker (Chrome "instant" event)."""
        if not self.enabled:
            return
        self._record({
            "name": name,
            "cat": category,
            "lane": lane or threading.current_thread().name,
            "ts": time.perf_counter() - self._epoch,
            "dur": 0.0,
            "self": 0.0,
            "depth": 0,
            "kind": "instant",
            "args": attrs,
        })

    def add_span(self, name: str, category: str, lane: str,
                 start: float, duration: float,
                 attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record an externally timed span.

        ``start`` is a ``time.perf_counter`` value from *this*
        process.  Remote work whose clock is not synchronised (a fleet
        worker's batch timing) is placed by the caller — conventionally
        right-aligned inside the local round-trip span that shipped it.
        """
        if not self.enabled:
            return
        self._record({
            "name": name,
            "cat": category,
            "lane": lane,
            "ts": start - self._epoch,
            "dur": duration,
            "self": duration,
            "depth": 0,
            "kind": "span",
            "args": dict(attrs or {}),
        })

    def _record(self, span: Dict[str, Any]) -> None:
        with self._lock:
            self._spans.append(span)

    def _stack(self) -> List[_Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    # -- access ----------------------------------------------------------
    def spans(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


#: The process-global tracer every instrumentation point talks to.
TRACER = Tracer()


def get_tracer() -> Tracer:
    return TRACER


# -- Chrome trace-event export ------------------------------------------


def chrome_events(spans: List[Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Spans as Chrome trace events (X = complete, i = instant).

    Lanes become synthetic integer thread ids with ``thread_name``
    metadata events so chrome://tracing / Perfetto label each row.
    """
    pid = os.getpid()
    lanes: Dict[str, int] = {}
    events: List[Dict[str, Any]] = []
    for span in spans:
        lane = str(span.get("lane", "main"))
        if lane not in lanes:
            lanes[lane] = len(lanes) + 1
    for lane, tid in sorted(lanes.items(), key=lambda kv: kv[1]):
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": lane},
        })
    for span in spans:
        tid = lanes[str(span.get("lane", "main"))]
        event: Dict[str, Any] = {
            "name": span["name"],
            "cat": span.get("cat", "repro"),
            "pid": pid,
            "tid": tid,
            "ts": round(span["ts"] * 1e6, 3),
            "args": dict(span.get("args") or {}),
        }
        if span.get("kind") == "instant":
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = round(span["dur"] * 1e6, 3)
        events.append(event)
    return events


def trace_document(spans: List[Dict[str, Any]],
                   metrics: Optional[Dict[str, Any]] = None,
                   meta: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """The on-disk trace form: Chrome-loadable plus the raw spans."""
    return {
        "displayTimeUnit": "ms",
        "traceEvents": chrome_events(spans),
        "reproTrace": {
            "version": TRACE_VERSION,
            "spans": spans,
            "metrics": dict(metrics or {}),
            "meta": dict(meta or {}),
        },
    }


def write_trace(path: str, spans: List[Dict[str, Any]],
                metrics: Optional[Dict[str, Any]] = None,
                meta: Optional[Dict[str, Any]] = None) -> str:
    doc = trace_document(spans, metrics=metrics, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def read_trace(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def spans_from_document(doc: Dict[str, Any]) -> List[Dict[str, Any]]:
    """Raw spans from a trace document.

    Prefers the lossless ``reproTrace`` section; falls back to
    reconstructing from Chrome ``X``/``i`` events (a plain Chrome file
    exported elsewhere still summarises, minus self-time precision).
    """
    section = doc.get("reproTrace")
    if isinstance(section, dict) and isinstance(section.get("spans"), list):
        return list(section["spans"])
    spans: List[Dict[str, Any]] = []
    names: Dict[int, str] = {}
    for event in doc.get("traceEvents", []):
        if event.get("ph") == "M" and event.get("name") == "thread_name":
            names[event.get("tid", 0)] = event.get("args", {}).get(
                "name", str(event.get("tid", 0)))
    for event in doc.get("traceEvents", []):
        if event.get("ph") not in ("X", "i"):
            continue
        dur = float(event.get("dur", 0.0)) / 1e6
        spans.append({
            "name": event.get("name", "?"),
            "cat": event.get("cat", "repro"),
            "lane": names.get(event.get("tid", 0), str(event.get("tid", 0))),
            "ts": float(event.get("ts", 0.0)) / 1e6,
            "dur": dur,
            "self": dur,
            "depth": 0,
            "kind": "instant" if event.get("ph") == "i" else "span",
            "args": dict(event.get("args") or {}),
        })
    return spans


# -- summary -------------------------------------------------------------


def summarize_spans(spans: List[Dict[str, Any]],
                    metrics: Optional[Dict[str, Any]] = None,
                    top: int = 12) -> str:
    """Human summary: top spans by self-time, hit rates, slot usage."""
    by_name: Dict[str, Dict[str, float]] = {}
    for span in spans:
        if span.get("kind") == "instant":
            continue
        row = by_name.setdefault(span["name"], {
            "count": 0, "total": 0.0, "self": 0.0})
        row["count"] += 1
        row["total"] += span.get("dur", 0.0)
        row["self"] += span.get("self", span.get("dur", 0.0))
    lines: List[str] = []
    lines.append(f"trace: {len(spans)} spans, {len(by_name)} names")
    if by_name:
        lines.append(
            f"{'span':<28}{'count':>7}{'total s':>10}{'self s':>10}")
        ranked = sorted(
            by_name.items(), key=lambda kv: kv[1]["self"], reverse=True)
        for name, row in ranked[:top]:
            lines.append(
                f"{name:<28}{int(row['count']):>7}"
                f"{row['total']:>10.4f}{row['self']:>10.4f}")
    lines.extend(_slot_utilization_lines(spans))
    lines.extend(_metrics_lines(metrics or {}))
    return "\n".join(lines)


def _slot_utilization_lines(spans: List[Dict[str, Any]]) -> List[str]:
    slots: Dict[str, float] = {}
    window_start = None
    window_end = None
    for span in spans:
        if span.get("cat") != "scheduler" or span.get("kind") == "instant":
            continue
        lane = str(span.get("lane", ""))
        if not lane.startswith("slot-"):
            continue
        slots[lane] = slots.get(lane, 0.0) + span.get("dur", 0.0)
        start = span.get("ts", 0.0)
        end = start + span.get("dur", 0.0)
        window_start = start if window_start is None else min(window_start, start)
        window_end = end if window_end is None else max(window_end, end)
    if not slots:
        return []
    window = max((window_end or 0.0) - (window_start or 0.0), 1e-9)
    lines = ["slot utilization:"]
    for lane in sorted(slots):
        busy = slots[lane]
        lines.append(
            f"  {lane:<12}{busy:>10.4f}s busy  "
            f"({100.0 * busy / window:5.1f}% of {window:.4f}s window)")
    return lines


def _metrics_lines(metrics: Dict[str, Any]) -> List[str]:
    lines: List[str] = []
    cache = metrics.get("cache")
    if isinstance(cache, dict):
        rate = cache.get("hit_rate")
        if rate is not None:
            lines.append(f"cache hit rate: {100.0 * rate:.1f}%")
        tiers = cache.get("tiers")
        if isinstance(tiers, dict):
            parts = [f"{key}={value}" for key, value in sorted(tiers.items())]
            if parts:
                lines.append("cache tiers: " + ", ".join(parts))
    sims = metrics.get("simulations_per_s")
    if sims:
        lines.append(f"throughput: {sims:,.0f} simulations/s")
    return lines
