"""Typed metrics registry: counters, gauges, histograms.

The registry replaces the duck-typed ``backend.scheduler_counters``
dict that used to be getattr-probed off executor backends: producers
get-or-create named instruments (`counter` / `gauge` / `histogram`),
consumers take a point-in-time :meth:`MetricsRegistry.snapshot` that
serialises straight into report JSON.  All instruments are
thread-safe — scheduler puller threads and fleet shard threads write
concurrently.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Iterable, List, Optional, Tuple

#: Default histogram bucket upper bounds (seconds) for latency-style
#: observations such as scheduler chunk service time.
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0)


class Counter:
    """Monotonically increasing value (ints or float totals)."""

    kind = "counter"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Gauge:
    """Last-write-wins value (fleet worker health, pool width...)."""

    kind = "gauge"
    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> float:
        return self._value


class Histogram:
    """Bucketed distribution with count/sum/min/max.

    ``buckets`` are inclusive upper bounds; observations above the
    last bound land in the implicit ``inf`` bucket.
    """

    kind = "histogram"
    __slots__ = ("name", "buckets", "_counts", "_count", "_sum",
                 "_min", "_max", "_lock")

    def __init__(self, name: str,
                 buckets: Optional[Iterable[float]] = None) -> None:
        self.name = name
        self.buckets: Tuple[float, ...] = tuple(
            sorted(buckets if buckets is not None
                   else DEFAULT_LATENCY_BUCKETS))
        self._counts = [0] * (len(self.buckets) + 1)
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            self._min = min(self._min, value)
            self._max = max(self._max, value)

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._sum

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            counts = list(self._counts)
            count = self._count
            total = self._sum
            low = self._min
            high = self._max
        labels = [repr(bound) for bound in self.buckets] + ["inf"]
        return {
            "count": count,
            "sum": total,
            "mean": (total / count) if count else 0.0,
            "min": low if count else 0.0,
            "max": high if count else 0.0,
            "buckets": dict(zip(labels, counts)),
        }


class MetricsRegistry:
    """Thread-safe, get-or-create registry of named instruments."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
            elif instrument.kind != kind:
                raise TypeError(
                    f"metric {name!r} already registered as "
                    f"{instrument.kind}, not {kind}")
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, lambda: Counter(name), "counter")

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name), "gauge")

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, buckets), "histogram")

    def inc(self, name: str, amount: float = 1) -> None:
        self.counter(name).inc(amount)

    def get(self, name: str):
        with self._lock:
            return self._instruments.get(name)

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    def value(self, name: str, default: float = 0) -> float:
        instrument = self.get(name)
        if instrument is None or instrument.kind == "histogram":
            return default
        return instrument.value

    def counters_with_prefix(self, prefix: str) -> Dict[str, float]:
        """Counter values under ``prefix``, keyed by the stripped tail."""
        out: Dict[str, float] = {}
        with self._lock:
            items = list(self._instruments.items())
        for name, instrument in items:
            if instrument.kind == "counter" and name.startswith(prefix):
                out[name[len(prefix):]] = instrument.value
        return out

    def snapshot(self) -> Dict[str, Any]:
        """Point-in-time, JSON-ready view of every instrument."""
        with self._lock:
            items = list(self._instruments.items())
        out: Dict[str, Any] = {
            "counters": {}, "gauges": {}, "histograms": {}}
        for name, instrument in sorted(items):
            out[instrument.kind + "s"][name] = instrument.snapshot()
        return out
