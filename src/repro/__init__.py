"""repro: a from-scratch reproduction of Bifrost (ISPASS 2022).

Bifrost connects the STONNE cycle-level simulator for reconfigurable DNN
accelerators to a TVM-style compiler stack and adds automatic mapping
optimization.  This package implements every substrate in Python:

* :mod:`repro.ir`, :mod:`repro.topi`, :mod:`repro.frontends`,
  :mod:`repro.runtime` -- the mini deep-learning compiler (TVM stand-in);
* :mod:`repro.stonne` -- the cycle-level simulator (MAERI, SIGMA, MAGMA,
  TPU behind a controller registry);
* :mod:`repro.engine` -- cached/batched evaluation over the simulators;
* :mod:`repro.tuner` -- the auto-tuning module (AutoTVM stand-in);
* :mod:`repro.mrna` -- the specialized analytical mapper for MAERI;
* :mod:`repro.bifrost` -- Bifrost itself, gluing the pieces together;
* :mod:`repro.models` -- the model zoo (AlexNet et al.).

Quickstart::

    import numpy as np
    from repro.bifrost import architecture, make_session, run_graph
    from repro.models import lenet_graph

    architecture.maeri()
    config = architecture.create_config_file()
    session = make_session(config, mapping_strategy="mrna")
    result = run_graph(lenet_graph(), {"data": np.zeros((1, 1, 28, 28))}, session)
    print(result.total_cycles)
"""

from repro.version import __version__

__all__ = ["__version__"]
