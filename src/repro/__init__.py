"""repro: a from-scratch reproduction of Bifrost (ISPASS 2022).

Bifrost connects the STONNE cycle-level simulator for reconfigurable DNN
accelerators to a TVM-style compiler stack and adds automatic mapping
optimization.  This package implements every substrate in Python:

* :mod:`repro.ir`, :mod:`repro.topi`, :mod:`repro.frontends`,
  :mod:`repro.runtime` -- the mini deep-learning compiler (TVM stand-in);
* :mod:`repro.stonne` -- the cycle-level simulator (MAERI, SIGMA, MAGMA,
  TPU behind a controller registry);
* :mod:`repro.engine` -- cached/batched evaluation over the simulators;
* :mod:`repro.tuner` -- the auto-tuning module (AutoTVM stand-in);
* :mod:`repro.mrna` -- the specialized analytical mapper for MAERI;
* :mod:`repro.bifrost` -- Bifrost itself, gluing the pieces together;
* :mod:`repro.session` -- the unified public API: one typed config
  (TOML/env/kwargs layered) and a lifecycle facade over engine, fleet
  and tuning;
* :mod:`repro.models` -- the model zoo (AlexNet et al.).

Quickstart::

    from repro.session import Session

    with Session(arch="maeri", mapping="mrna") as s:
        report = s.run("lenet")
        print(report.total_cycles)

    # or drive everything from a config file / the environment:
    with Session.from_file("repro.toml") as s:
        print(s.tune("lenet", "conv1").best_mapping)
"""

from repro.version import __version__

__all__ = ["__version__"]
