"""A reduced VGG-style network (VGG-11 geometry at 64x64 input).

Used by the design-space-exploration example: deeper than LeNet, cheaper
than AlexNet, all-3x3 convolutions — the regime where mapping choice on
MAERI matters most.
"""

from __future__ import annotations

from typing import List

from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph
from repro.stonne.layer import ConvLayer, FcLayer


def vgg_small_graph(num_classes: int = 100) -> Graph:
    """VGG-11-style graph over 64x64 RGB inputs with batch norms."""
    builder = GraphBuilder("vgg_small", (1, 3, 64, 64))
    channels = [64, 128, 256, 256, 512, 512]
    pools_after = {0, 1, 3, 5}
    for index, ch in enumerate(channels):
        builder.conv2d(ch, (3, 3), padding=(1, 1), name=f"conv{index + 1}")
        builder.batch_norm(name=f"bn{index + 1}")
        builder.relu()
        if index in pools_after:
            builder.max_pool2d((2, 2), (2, 2))
    (
        builder
        .flatten()
        .dense(1024, name="fc1")
        .relu()
        .dropout()
        .dense(num_classes, name="fc2")
    )
    return builder.build()


def vgg_small_conv_layers() -> List[ConvLayer]:
    """Conv workload descriptors matching :func:`vgg_small_graph`."""
    dims = [
        ("conv1", 3, 64, 64),
        ("conv2", 64, 32, 128),
        ("conv3", 128, 16, 256),
        ("conv4", 256, 16, 256),
        ("conv5", 256, 8, 512),
        ("conv6", 512, 8, 512),
    ]
    return [
        ConvLayer(name, C=c, H=hw, W=hw, K=k, R=3, S=3, pad_h=1, pad_w=1)
        for name, c, hw, k in dims
    ]


def vgg_small_fc_layers(num_classes: int = 100) -> List[FcLayer]:
    """FC workload descriptors matching :func:`vgg_small_graph`."""
    return [
        FcLayer("fc1", in_features=512 * 4 * 4, out_features=1024),
        FcLayer("fc2", in_features=1024, out_features=num_classes),
    ]
