"""AlexNet: the paper's benchmark network.

Two views of the same model:

* :func:`alexnet_graph` — the full IR graph (torchvision's single-group
  AlexNet variant), for end-to-end execution through Bifrost;
* :func:`alexnet_conv_layers` / :func:`alexnet_fc_layers` — the 5 conv and
  3 FC layer *descriptors* the paper benchmarks in Figures 9, 11, 12 and
  Table VI.

We use the torchvision parameterization (64/192/384/256/256 channels, no
grouped convolutions) rather than the original 1-GPU-split 2012 network;
the FC stack (9216 -> 4096 -> 4096 -> 1000) matches the paper's FC1-FC3
dimensions exactly.
"""

from __future__ import annotations

from typing import List

from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph
from repro.stonne.layer import ConvLayer, FcLayer

#: Number of classes in the ImageNet-1k head.
NUM_CLASSES = 1000


def alexnet_conv_layers() -> List[ConvLayer]:
    """The five convolutional layers of AlexNet, as workload descriptors."""
    return [
        ConvLayer("conv1", C=3, H=224, W=224, K=64, R=11, S=11,
                  stride_h=4, stride_w=4, pad_h=2, pad_w=2),
        ConvLayer("conv2", C=64, H=27, W=27, K=192, R=5, S=5,
                  pad_h=2, pad_w=2),
        ConvLayer("conv3", C=192, H=13, W=13, K=384, R=3, S=3,
                  pad_h=1, pad_w=1),
        ConvLayer("conv4", C=384, H=13, W=13, K=256, R=3, S=3,
                  pad_h=1, pad_w=1),
        ConvLayer("conv5", C=256, H=13, W=13, K=256, R=3, S=3,
                  pad_h=1, pad_w=1),
    ]


def alexnet_fc_layers() -> List[FcLayer]:
    """The three fully connected layers of AlexNet (paper Table VI)."""
    return [
        FcLayer("fc1", in_features=9216, out_features=4096),
        FcLayer("fc2", in_features=4096, out_features=4096),
        FcLayer("fc3", in_features=4096, out_features=NUM_CLASSES),
    ]


def alexnet_layers() -> List[object]:
    """All eight accelerated layers, conv first (evaluation order)."""
    return [*alexnet_conv_layers(), *alexnet_fc_layers()]


def alexnet_graph(num_classes: int = NUM_CLASSES) -> Graph:
    """The full AlexNet IR graph (224x224x3 input, NCHW)."""
    builder = GraphBuilder("alexnet", (1, 3, 224, 224))
    (
        builder
        .conv2d(64, (11, 11), strides=(4, 4), padding=(2, 2), name="conv1")
        .relu()
        .max_pool2d((3, 3), (2, 2))
        .conv2d(192, (5, 5), padding=(2, 2), name="conv2")
        .relu()
        .max_pool2d((3, 3), (2, 2))
        .conv2d(384, (3, 3), padding=(1, 1), name="conv3")
        .relu()
        .conv2d(256, (3, 3), padding=(1, 1), name="conv4")
        .relu()
        .conv2d(256, (3, 3), padding=(1, 1), name="conv5")
        .relu()
        .max_pool2d((3, 3), (2, 2))
        .flatten()
        .dropout()
        .dense(4096, name="fc1")
        .relu()
        .dropout()
        .dense(4096, name="fc2")
        .relu()
        .dense(num_classes, name="fc3")
    )
    return builder.build()
