"""A configurable multilayer perceptron (dense-only workloads)."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import GraphError
from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph
from repro.stonne.layer import FcLayer


def mlp_graph(
    input_features: int = 784,
    hidden: Sequence[int] = (256, 128),
    num_classes: int = 10,
) -> Graph:
    """A ReLU MLP ending in softmax."""
    if input_features < 1:
        raise GraphError(f"input_features must be >= 1, got {input_features}")
    builder = GraphBuilder("mlp", (1, input_features))
    for index, units in enumerate(hidden):
        builder.dense(units, name=f"fc{index + 1}").relu()
    builder.dense(num_classes, name=f"fc{len(hidden) + 1}").softmax()
    return builder.build()


def mlp_fc_layers(
    input_features: int = 784,
    hidden: Sequence[int] = (256, 128),
    num_classes: int = 10,
) -> List[FcLayer]:
    """Dense workload descriptors matching :func:`mlp_graph`."""
    layers: List[FcLayer] = []
    prev = input_features
    for index, units in enumerate(hidden):
        layers.append(FcLayer(f"fc{index + 1}", in_features=prev, out_features=units))
        prev = units
    layers.append(
        FcLayer(f"fc{len(hidden) + 1}", in_features=prev, out_features=num_classes)
    )
    return layers
