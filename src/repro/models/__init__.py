"""Model zoo: graphs plus accelerated-layer descriptors for each network."""

from repro.models.alexnet import (
    alexnet_conv_layers,
    alexnet_fc_layers,
    alexnet_graph,
    alexnet_layers,
)
from repro.models.lenet import lenet_conv_layers, lenet_fc_layers, lenet_graph
from repro.models.mlp import mlp_fc_layers, mlp_graph
from repro.models.vgg_small import (
    vgg_small_conv_layers,
    vgg_small_fc_layers,
    vgg_small_graph,
)

__all__ = [
    "alexnet_conv_layers",
    "alexnet_fc_layers",
    "alexnet_graph",
    "alexnet_layers",
    "lenet_conv_layers",
    "lenet_fc_layers",
    "lenet_graph",
    "mlp_fc_layers",
    "mlp_graph",
    "vgg_small_conv_layers",
    "vgg_small_fc_layers",
    "vgg_small_graph",
]
