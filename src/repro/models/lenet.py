"""LeNet-5: a small CNN for fast end-to-end tests and examples."""

from __future__ import annotations

from typing import List

from repro.ir.builder import GraphBuilder
from repro.ir.graph import Graph
from repro.stonne.layer import ConvLayer, FcLayer


def lenet_graph(num_classes: int = 10) -> Graph:
    """LeNet-5 over 28x28 single-channel inputs (MNIST geometry)."""
    builder = GraphBuilder("lenet5", (1, 1, 28, 28))
    (
        builder
        .conv2d(6, (5, 5), padding=(2, 2), name="conv1")
        .relu()
        .avg_pool2d((2, 2), (2, 2))
        .conv2d(16, (5, 5), name="conv2")
        .relu()
        .avg_pool2d((2, 2), (2, 2))
        .flatten()
        .dense(120, name="fc1")
        .relu()
        .dense(84, name="fc2")
        .relu()
        .dense(num_classes, name="fc3")
    )
    return builder.build()


def lenet_conv_layers() -> List[ConvLayer]:
    """The two conv workloads of LeNet-5."""
    return [
        ConvLayer("conv1", C=1, H=28, W=28, K=6, R=5, S=5, pad_h=2, pad_w=2),
        ConvLayer("conv2", C=6, H=14, W=14, K=16, R=5, S=5),
    ]


def lenet_fc_layers(num_classes: int = 10) -> List[FcLayer]:
    """The three FC workloads of LeNet-5."""
    return [
        FcLayer("fc1", in_features=400, out_features=120),
        FcLayer("fc2", in_features=120, out_features=84),
        FcLayer("fc3", in_features=84, out_features=num_classes),
    ]
