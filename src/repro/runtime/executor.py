"""Graph executor: runs an IR graph with per-node target selection.

The executor walks the DAG in topological order, resolves each op through
the strategy registry for its assigned target, and records a per-node
profile.  Heterogeneous execution — the heart of Bifrost's end-to-end
story — is expressed by an *offload policy*: a callable deciding, per op
node, which target runs it.  Layers the accelerator cannot run stay on
the CPU, "which allows end-to-end evaluation and easy verification of
correctness" (§I).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from repro.errors import GraphError
from repro.ir.graph import Graph, Node
from repro.topi.registry import has_op, lookup_op

#: Decides the target ("cpu", "stonne", ...) for an op node.
OffloadPolicy = Callable[[Node], str]


def cpu_only_policy(node: Node) -> str:
    """Run everything on the CPU (pure TVM-style execution)."""
    return "cpu"


def make_offload_policy(
    target: str, op_names: tuple = ("conv2d", "dense")
) -> OffloadPolicy:
    """Offload ``op_names`` to ``target`` when an implementation exists.

    Falling back to the CPU when the external library lacks an op mirrors
    how TVM treats external libraries.
    """

    def policy(node: Node) -> str:
        assert node.op_name is not None
        if node.op_name in op_names and has_op(node.op_name, target):
            return target
        return "cpu"

    return policy


@dataclass
class NodeProfile:
    """Execution record for one op node."""

    node_id: int
    name: str
    op_name: str
    target: str
    wall_time_s: float
    output_shape: tuple


@dataclass
class ExecutionReport:
    """Whole-graph execution profile."""

    graph_name: str
    profiles: List[NodeProfile] = field(default_factory=list)

    def by_target(self) -> Dict[str, int]:
        """Node counts per target."""
        counts: Dict[str, int] = {}
        for profile in self.profiles:
            counts[profile.target] = counts.get(profile.target, 0) + 1
        return counts

    def offloaded(self, target: str = "stonne") -> List[NodeProfile]:
        return [p for p in self.profiles if p.target == target]

    def summary(self) -> str:
        counts = ", ".join(f"{t}: {n}" for t, n in sorted(self.by_target().items()))
        return f"{self.graph_name}: {len(self.profiles)} op nodes ({counts})"


class GraphExecutor:
    """Executes a finalized graph.

    Args:
        graph: A finalized :class:`~repro.ir.graph.Graph`.
        policy: Offload policy; defaults to CPU-only.
    """

    def __init__(self, graph: Graph, policy: Optional[OffloadPolicy] = None) -> None:
        if not graph.output_ids:
            raise GraphError("executor needs a graph with outputs")
        self.graph = graph
        self.policy = policy or cpu_only_policy
        self.last_report: Optional[ExecutionReport] = None

    def run(self, feeds: Dict[str, np.ndarray]) -> List[np.ndarray]:
        """Execute the graph; returns the output tensors in order.

        ``feeds`` maps input names to tensors; every declared input must be
        provided with its declared shape.
        """
        values: Dict[int, np.ndarray] = {}
        for node_id in self.graph.input_ids:
            node = self.graph.nodes[node_id]
            if node.name not in feeds:
                raise GraphError(f"missing feed for input {node.name!r}")
            value = np.asarray(feeds[node.name], dtype=np.float64)
            assert node.ttype is not None
            if tuple(value.shape) != node.ttype.shape:
                raise GraphError(
                    f"feed {node.name!r} has shape {value.shape}, "
                    f"declared {node.ttype.shape}"
                )
            values[node_id] = value

        unknown = set(feeds) - {
            self.graph.nodes[i].name for i in self.graph.input_ids
        }
        if unknown:
            raise GraphError(f"unknown feeds: {sorted(unknown)}")

        report = ExecutionReport(graph_name=self.graph.name)
        for node in self.graph.topological_order():
            if node.kind == "input":
                continue
            if node.kind == "const":
                values[node.node_id] = self.graph.params[node.node_id]
                continue
            assert node.op_name is not None
            target = self.policy(node)
            impl = lookup_op(node.op_name, target)
            inputs = [values[ref] for ref in node.inputs]
            start = time.perf_counter()
            out = impl(node.attrs, inputs)
            elapsed = time.perf_counter() - start
            values[node.node_id] = out
            report.profiles.append(
                NodeProfile(
                    node_id=node.node_id,
                    name=node.name,
                    op_name=node.op_name,
                    target=target,
                    wall_time_s=elapsed,
                    output_shape=tuple(out.shape),
                )
            )
        self.last_report = report
        return [values[node_id] for node_id in self.graph.output_ids]
