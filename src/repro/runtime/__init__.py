"""Graph runtime: executor, offload policies, compiled modules."""

from repro.runtime.executor import (
    ExecutionReport,
    GraphExecutor,
    NodeProfile,
    cpu_only_policy,
    make_offload_policy,
)
from repro.runtime.module import CompiledModule, compile_graph

__all__ = [
    "CompiledModule",
    "ExecutionReport",
    "GraphExecutor",
    "NodeProfile",
    "compile_graph",
    "cpu_only_policy",
    "make_offload_policy",
]
