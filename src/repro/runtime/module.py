"""Compiled module: the user-facing handle TVM returns after ``build``.

:func:`compile_graph` runs the optimization pipeline and wraps the result
with an executor, giving the ``module = build(model); module(x)`` flow of
Listing 1.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.ir.graph import Graph
from repro.ir.passes import optimize
from repro.runtime.executor import (
    ExecutionReport,
    GraphExecutor,
    OffloadPolicy,
    cpu_only_policy,
)


class CompiledModule:
    """An optimized graph bound to an executor."""

    def __init__(self, graph: Graph, policy: Optional[OffloadPolicy] = None) -> None:
        self.graph = graph
        self.executor = GraphExecutor(graph, policy or cpu_only_policy)

    def run(self, feeds: Dict[str, np.ndarray]) -> List[np.ndarray]:
        """Execute with named feeds; returns all outputs."""
        return self.executor.run(feeds)

    def __call__(self, data: np.ndarray) -> np.ndarray:
        """Single-input convenience: feed the first declared input."""
        first_input = self.graph.nodes[self.graph.input_ids[0]].name
        return self.run({first_input: data})[0]

    @property
    def report(self) -> Optional[ExecutionReport]:
        """Profile of the most recent execution."""
        return self.executor.last_report


def compile_graph(
    graph: Graph, policy: Optional[OffloadPolicy] = None, apply_passes: bool = True
) -> CompiledModule:
    """Optimize ``graph`` and return a runnable module."""
    if apply_passes:
        optimize(graph)
    return CompiledModule(graph, policy)
