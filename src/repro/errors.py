"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so callers can catch a
single base class.  Subsystems raise the most specific subclass available;
error messages always name the offending value so configuration mistakes are
diagnosable without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """An invalid hardware configuration was supplied.

    Raised by the simulator configurator when a configuration violates the
    rules in Table III of the paper (e.g. a non-power-of-two ``ms_size`` or
    an ``OS_MESH`` network on a MAERI controller).
    """


class MappingError(ReproError):
    """An invalid dataflow mapping (tile configuration) was supplied."""


class LayerError(ReproError):
    """A layer descriptor is malformed (e.g. negative dimensions)."""


class UnsupportedLayerError(LayerError):
    """The requested layer type is not supported by the chosen accelerator."""


class GraphError(ReproError):
    """The IR graph is structurally invalid (cycles, dangling inputs...)."""


class ShapeInferenceError(GraphError):
    """Shape inference failed for a node in the IR graph."""


class FrontendError(ReproError):
    """A model could not be parsed by a frontend importer."""


class TuningError(ReproError):
    """The auto-tuning module failed (empty space, no valid configs...)."""


class SimulationError(ReproError):
    """The cycle-level simulation entered an inconsistent state."""


class FleetError(ReproError):
    """A fleet worker daemon could not be started or managed."""


class ServeError(ReproError):
    """A sweep-service request failed (unknown job, refused submission,
    unreachable daemon...)."""


class SweepCancelled(ReproError):
    """A sweep was cancelled between scenarios.

    Raised out of :meth:`repro.session.Session.sweep` when a progress
    callback requests cancellation.  ``partial`` carries a
    :class:`~repro.sweep.SweepReport` of the scenarios that completed
    before the cancellation point (possibly empty) — archiving it makes
    the interrupted sweep resumable via ``--resume``.
    """

    def __init__(self, message: str = "sweep cancelled", partial=None) -> None:
        super().__init__(message)
        self.partial = partial
