"""The sweep service daemon: many clients, one measurement substrate.

:class:`SweepService` is a threading TCP server (one handler thread per
client connection, the same accept model as the fleet worker) wrapped
around exactly one :class:`~repro.session.Session`.  Handlers translate
wire messages into :class:`~repro.serve.jobs.JobQueue` operations; a
single executor thread drains the queue and runs each job through
``Session.sweep`` — sequentially, because a session's engines are not
thread-safe, and deliberately: concurrency across *clients* comes from
the shared stats cache (a scenario one job simulated is a cache hit for
every later job), not from racing sweeps against each other.

Every finished report — including the partial report of a cancelled
job — is archived as ``<archive_dir>/<job-id>.json``, a plain
:class:`~repro.sweep.SweepReport` document that feeds straight into
``repro report diff`` and ``repro submit --resume``.

Shutdown is graceful: SIGTERM/SIGINT stop the listener, cancel the
running job at its next scenario checkpoint (archiving the resumable
partial), close the session's cache tiers and fleet, and exit 0.
"""

from __future__ import annotations

import json
import os
import queue
import socket
import socketserver
import sys
import threading
from pathlib import Path
from typing import Optional, Tuple

from repro.errors import ReproError, ServeError, SweepCancelled
from repro.fleet import protocol
from repro.fleet.worker import install_shutdown_signals, parse_address
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import TRACER
from repro.serve.jobs import Job, JobQueue
from repro.session.config import SessionConfig
from repro.sweep.report import SweepReport


class _ServeRequestHandler(socketserver.BaseRequestHandler):
    """One client connection: hello (+auth), then a request loop.

    Per-connection state is nothing but the socket itself — every
    mutation goes through the lock-protected job queue — so two clients
    interleaving messages on one daemon cannot corrupt each other.
    """

    def setup(self) -> None:
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def handle(self) -> None:
        server: SweepService = self.server  # type: ignore[assignment]
        server.metrics.counter("serve.connections").inc()
        nonce = protocol.make_nonce() if server.secret else None
        hello = protocol.hello_message(
            ["sweep"], os.getpid(), capacity=1, nonce=nonce
        )
        hello["service"] = "sweep"
        protocol.send_message(self.request, hello)
        if server.secret:
            try:
                answer = protocol.recv_message(self.request)
            except (protocol.ProtocolError, OSError):
                return
            if answer is None or not protocol.verify_auth(
                server.secret, nonce, answer
            ):
                try:
                    protocol.send_message(
                        self.request,
                        protocol.error_message(
                            protocol.ProtocolError(
                                "authentication failed: bad or missing "
                                "shared secret"
                            )
                        ),
                    )
                except (protocol.ProtocolError, OSError):
                    pass
                return
            protocol.send_message(self.request, {"type": "auth_ok"})
        while True:
            try:
                message = protocol.recv_message(self.request)
            except (protocol.ProtocolError, OSError):
                return  # client vanished or spoke garbage; drop the line
            if message is None or message.get("type") == "bye":
                return
            try:
                if not self._dispatch(server, message):
                    return
            except (protocol.ProtocolError, OSError):
                return

    def _dispatch(self, server: "SweepService", message: dict) -> bool:
        """Answer one message; False ends the connection."""
        kind = message.get("type")
        try:
            if kind == "ping":
                protocol.send_message(self.request, {"type": "pong"})
            elif kind == "submit_sweep":
                job = server.submit(message)
                protocol.send_message(
                    self.request, protocol.job_message(job.describe())
                )
            elif kind == "job_list":
                protocol.send_message(
                    self.request,
                    protocol.jobs_message(
                        [job.describe() for job in server.jobs.list()]
                    ),
                )
            elif kind == "job_status":
                job = server.jobs.get(message.get("id"))
                protocol.send_message(
                    self.request, protocol.job_message(job.describe())
                )
            elif kind == "job_result":
                job, report = server.result(message.get("id"))
                protocol.send_message(
                    self.request,
                    protocol.job_result_message(job.describe(), report),
                )
            elif kind == "job_cancel":
                job = server.jobs.cancel(message.get("id"))
                protocol.send_message(
                    self.request, protocol.job_message(job.describe())
                )
            elif kind == "job_watch":
                self._watch(server, message.get("id"))
            else:
                protocol.send_message(
                    self.request,
                    protocol.error_message(
                        protocol.ProtocolError(
                            f"unknown message type {kind!r}"
                        )
                    ),
                )
        except ReproError as exc:
            # Bad request (unknown job, malformed plan...): answer with
            # an error frame and keep the connection alive for the next
            # request — one client mistake must not cost its session.
            protocol.send_message(self.request, protocol.error_message(exc))
        return True

    def _watch(self, server: "SweepService", job_id: Optional[str]) -> None:
        """Stream progress frames until the job lands, then its state.

        The wait on the subscriber queue is bounded: between events the
        socket is probed, so a watcher that vanished mid-job is
        unsubscribed promptly instead of pinning its handler thread (and
        every buffered progress event) until the job reaches a terminal
        state.
        """
        job = server.jobs.get(job_id)
        events = server.jobs.subscribe(job.id)
        try:
            while True:
                try:
                    event = events.get(timeout=1.0)
                except queue.Empty:
                    if self._watcher_vanished():
                        return
                    continue
                if event is None:
                    break
                protocol.send_message(
                    self.request, protocol.progress_message(job.id, event)
                )
        finally:
            server.jobs.unsubscribe(job.id, events)
        protocol.send_message(
            self.request, protocol.job_message(job.describe())
        )

    def _watcher_vanished(self) -> bool:
        """True when the watching client hung up (EOF on a peek).

        A watcher sends nothing while a watch is active, so a non-blocking
        peek either raises ``BlockingIOError`` (alive, idle), returns
        ``b""`` (clean hangup), or errors (reset).
        """
        try:
            return (
                self.request.recv(
                    1, socket.MSG_PEEK | socket.MSG_DONTWAIT
                )
                == b""
            )
        except (BlockingIOError, InterruptedError):
            return False
        except OSError:
            return True


class SweepService(socketserver.ThreadingTCPServer):
    """The daemon: a threading TCP server owning one session and a queue.

    Args:
        address: ``(host, port)`` to bind; port 0 picks a free port.
        config: The :class:`SessionConfig` the owned session resolves
            from — its cache path is what every job shares.
        archive_dir: Directory for finished-job ``SweepReport`` JSON
            (created on demand).
        secret: Opt-in shared secret; same challenge-response contract
            as the fleet worker (``fleet.secret`` covers both).
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        config: Optional[SessionConfig] = None,
        archive_dir: Optional[str] = None,
        secret: Optional[str] = None,
    ) -> None:
        super().__init__(address, _ServeRequestHandler)
        self.config = config if config is not None else SessionConfig()
        self.secret = (
            secret if secret is not None else self.config.fleet.secret
        ) or None
        self.archive_dir = Path(
            archive_dir if archive_dir is not None else "serve-archive"
        )
        self.jobs = JobQueue()
        self.metrics = MetricsRegistry()
        self._session = None
        self._session_lock = threading.Lock()
        self._stopping = threading.Event()
        self._serving = threading.Event()
        self._executor = threading.Thread(
            target=self._run_jobs, name="serve-executor", daemon=True
        )
        self._executor.start()

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving.set()
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving.clear()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def _session_for_jobs(self):
        """The one lazily-built session every job runs against."""
        from repro.session.session import Session

        with self._session_lock:
            if self._session is None:
                self._session = Session(self.config)
            return self._session

    # ------------------------------------------------------------------
    # handler entry points
    # ------------------------------------------------------------------
    def submit(self, message: dict) -> Job:
        """Validate one ``submit_sweep`` message into a queued job."""
        if self._stopping.is_set():
            raise ServeError("service is shutting down; not accepting jobs")
        plan = protocol.plan_from_wire(message.get("plan", {}))
        resume = None
        if isinstance(message.get("resume"), dict):
            try:
                resume = SweepReport.from_dict(message["resume"])
            except (KeyError, TypeError, ValueError) as exc:
                raise ServeError(
                    f"malformed resume archive: {exc}"
                ) from exc
        job = self.jobs.submit(
            plan, resume=resume, label=message.get("label")
        )
        self.metrics.counter("serve.jobs_submitted").inc()
        return job

    def result(self, job_id: Optional[str]) -> Tuple[Job, dict]:
        """A finished job's archived report dict (state-checked)."""
        job = self.jobs.get(job_id)
        if job.archive is None:
            raise ServeError(
                f"job {job.id} is {job.state} and has no archived report yet"
            )
        with open(job.archive, "r", encoding="utf-8") as handle:
            return job, json.load(handle)

    # ------------------------------------------------------------------
    # the executor thread
    # ------------------------------------------------------------------
    def _run_jobs(self) -> None:
        while not self._stopping.is_set():
            job = self.jobs.next_job(timeout=0.1)
            if job is None:
                continue
            self._run_job(job)
        # Drain: anything still queued at shutdown is cancelled, so
        # clients polling across the restart see a terminal state.
        while True:
            job = self.jobs.next_job(timeout=0)
            if job is None:
                break
            self.jobs.finish(job, "cancelled", error="service shut down")

    def _run_job(self, job: Job) -> None:
        def progress(event: dict) -> None:
            if job.cancel_event.is_set():
                raise SweepCancelled(f"job {job.id} cancelled")
            self.jobs.publish(job, event)

        with TRACER.span(
            "serve.job", category="serve",
            job=job.id, scenarios=len(job.plan.scenarios),
        ):
            try:
                session = self._session_for_jobs()
                report = session.sweep(
                    job.plan, progress=progress, resume=job.resume
                )
            except SweepCancelled as exc:
                archive = (
                    self._archive(job, exc.partial)
                    if exc.partial is not None and exc.partial.scenarios
                    else None
                )
                self.jobs.finish(
                    job, "cancelled", error=str(exc), archive=archive
                )
                self.metrics.counter("serve.jobs_cancelled").inc()
            except Exception as exc:  # noqa: BLE001 - job isolation
                self.jobs.finish(job, "failed", error=str(exc))
                self.metrics.counter("serve.jobs_failed").inc()
            else:
                archive = self._archive(job, report)
                self.jobs.finish(job, "done", archive=archive)
                self.metrics.counter("serve.jobs_done").inc()
                self.metrics.counter("serve.scenarios_done").inc(
                    len(report.scenarios)
                )
                self.metrics.counter("serve.scenarios_resumed").inc(
                    int(report.counters.get("resumed_scenarios", 0))
                )

    def _archive(self, job: Job, report: SweepReport) -> str:
        self.archive_dir.mkdir(parents=True, exist_ok=True)
        path = self.archive_dir / f"{job.id}.json"
        path.write_text(report.to_json() + "\n", encoding="utf-8")
        return str(path)

    # ------------------------------------------------------------------
    def close(self, drain_timeout: float = 30.0) -> None:
        """Graceful stop: no new jobs, cancel the running one at its
        next checkpoint (archiving the resumable partial), close the
        owned session's cache tiers and fleet.  Idempotent."""
        self._stopping.set()
        for job in self.jobs.list():
            if job.state == "running":
                job.cancel_event.set()
        if self._serving.is_set():
            self.shutdown()
        self._executor.join(drain_timeout)
        while self._executor.is_alive():
            # Cancellation only lands at scenario-boundary checkpoints;
            # a scenario outliving the drain timeout means the sweep is
            # still running.  Closing the session (and its cache tiers)
            # underneath it risks errors and partial cache writes, so
            # keep waiting — loudly — until the executor actually exits.
            print(
                "serve: in-flight scenario has not reached its "
                "cancellation checkpoint yet; waiting before closing "
                "caches...",
                file=sys.stderr,
                flush=True,
            )
            self._executor.join(10.0)
        self.server_close()
        with self._session_lock:
            if self._session is not None:
                self._session.close()
                self._session = None


def serve(
    listen: str,
    config: Optional[SessionConfig] = None,
    archive_dir: Optional[str] = None,
    quiet: bool = False,
) -> int:
    """Blocking daemon entry point behind ``repro serve``.

    Serves until interrupted; SIGTERM/SIGINT shut down gracefully (the
    running job's partial report is archived for ``--resume``) and the
    process exits 0.
    """
    host, port = parse_address(listen, default_port=9462)
    config = config if config is not None else SessionConfig()
    service = SweepService(
        (host, port), config=config, archive_dir=archive_dir
    )
    if not quiet:
        print(
            f"sweep service pid {os.getpid()} listening on "
            f"{service.address} (cache: {config.cache.path or 'memory'}; "
            f"archive: {service.archive_dir}; "
            f"auth: {'on' if service.secret else 'off'})",
            flush=True,
        )
    install_shutdown_signals(service)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        service.close()
    if not quiet:
        print("sweep service stopped", flush=True)
    return 0
