"""The sweep service's job queue: submissions as first-class state machines.

A :class:`Job` is one submitted :class:`~repro.sweep.SweepPlan` walking
``queued`` → ``running`` → ``done``/``failed``/``cancelled``.  The
:class:`JobQueue` is the single synchronization point between the
connection handler threads (submit/status/cancel/watch) and the one
executor thread that actually runs sweeps — every transition happens
under its lock, and progress events fan out to per-job subscriber
queues so a watching client never blocks the runner.

Cancellation is cooperative: ``cancel()`` flips a queued job terminal
immediately, while a running job gets its ``cancel_event`` set and the
runner's progress checkpoint raises
:class:`~repro.errors.SweepCancelled` at the next scenario boundary —
the partial report is archived, so the cancelled job is resumable.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import ServeError

#: Every state a job can be in; the last three are terminal.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: States a job never leaves.
TERMINAL_STATES = ("done", "failed", "cancelled")


@dataclass
class Job:
    """One submitted sweep plan and everything known about its run."""

    id: str
    plan: Any  # SweepPlan
    resume: Optional[Any] = None  # SweepReport archive, if resuming
    label: Optional[str] = None
    state: str = "queued"
    error: Optional[str] = None
    submitted_s: float = field(default_factory=time.time)
    started_s: Optional[float] = None
    finished_s: Optional[float] = None
    #: Last progress event seen (scenario-level completion lives here).
    progress: Dict[str, Any] = field(default_factory=dict)
    #: Archive path of the finished (or partial) report, when written.
    archive: Optional[str] = None
    #: Set to request cooperative cancellation of a running job.
    cancel_event: threading.Event = field(default_factory=threading.Event)
    #: Live watch subscriptions; each receives every progress event.
    subscribers: List["queue.Queue"] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def describe(self) -> Dict[str, Any]:
        """The job's wire form (``repro jobs`` / ``repro status``)."""
        return {
            "id": self.id,
            "label": self.label,
            "state": self.state,
            "scenarios": len(self.plan.scenarios),
            "completed": self.progress.get("completed", 0),
            "resumed": self.progress.get("resumed", 0),
            "error": self.error,
            "archive": self.archive,
            "submitted_s": self.submitted_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
        }


class JobQueue:
    """Thread-safe FIFO of jobs plus their full lifecycle bookkeeping."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._sequence = 0

    # ------------------------------------------------------------------
    # handler-side API
    # ------------------------------------------------------------------
    def submit(
        self,
        plan,
        resume=None,
        label: Optional[str] = None,
    ) -> Job:
        """Enqueue a plan; returns the new ``queued`` job."""
        with self._lock:
            self._sequence += 1
            job = Job(
                id=f"job-{self._sequence:04d}",
                plan=plan,
                resume=resume,
                label=label,
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
            self._ready.notify_all()
            return job

    def get(self, job_id: str) -> Job:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                raise ServeError(
                    f"unknown job {job_id!r}; known: "
                    f"{', '.join(self._order) or 'none'}"
                )
            return job

    def list(self) -> List[Job]:
        """Every job, in submission order."""
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def cancel(self, job_id: str) -> Job:
        """Cancel a job: queued flips terminal now, running flips its
        cancel flag (the runner lands the state at its next scenario
        checkpoint), terminal states raise."""
        job = self.get(job_id)
        with self._lock:
            if job.state == "queued":
                job.state = "cancelled"
                job.finished_s = time.time()
                self._publish_locked(job, {"event": "cancelled"})
                for events in job.subscribers:
                    events.put(None)
                job.subscribers.clear()
            elif job.state == "running":
                job.cancel_event.set()
            else:
                raise ServeError(
                    f"job {job_id} is already {job.state}; nothing to cancel"
                )
            return job

    def subscribe(self, job_id: str) -> "queue.Queue":
        """A queue receiving the job's future progress events (and a
        final ``None`` sentinel once the job is terminal)."""
        job = self.get(job_id)
        with self._lock:
            events: "queue.Queue" = queue.Queue()
            if job.terminal:
                events.put(None)
            else:
                job.subscribers.append(events)
            return events

    def unsubscribe(self, job_id: str, events: "queue.Queue") -> None:
        job = self.get(job_id)
        with self._lock:
            if events in job.subscribers:
                job.subscribers.remove(events)

    # ------------------------------------------------------------------
    # executor-side API
    # ------------------------------------------------------------------
    def next_job(self, timeout: Optional[float] = None) -> Optional[Job]:
        """Block up to ``timeout`` for the oldest queued job and mark it
        ``running``; None on timeout.  The single consumer is the
        service's executor thread."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        with self._lock:
            while True:
                for job_id in self._order:
                    job = self._jobs[job_id]
                    if job.state == "queued":
                        job.state = "running"
                        job.started_s = time.time()
                        return job
                if deadline is None:
                    self._ready.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._ready.wait(remaining)

    def publish(self, job: Job, event: Dict[str, Any]) -> None:
        """Record and fan one progress event out to the subscribers."""
        with self._lock:
            self._publish_locked(job, event)

    def finish(
        self,
        job: Job,
        state: str,
        error: Optional[str] = None,
        archive: Optional[str] = None,
    ) -> None:
        """Land a running job in a terminal state and wake watchers."""
        if state not in TERMINAL_STATES:
            raise ServeError(f"{state!r} is not a terminal job state")
        with self._lock:
            job.state = state
            job.error = error
            if archive is not None:
                job.archive = archive
            job.finished_s = time.time()
            for events in job.subscribers:
                events.put(None)
            job.subscribers.clear()

    # ------------------------------------------------------------------
    def _publish_locked(self, job: Job, event: Dict[str, Any]) -> None:
        job.progress = dict(event)
        for events in job.subscribers:
            events.put(dict(event))


__all__ = ["JOB_STATES", "TERMINAL_STATES", "Job", "JobQueue"]
