"""The sweep service's blocking client — the library behind the CLI.

:class:`ServeClient` speaks the fleet wire protocol to one daemon over
a persistent connection: hello (with the optional HMAC challenge), then
request/response frames.  Every public method maps one-to-one onto a
CLI verb: :meth:`submit` (``repro submit``), :meth:`jobs`, :meth:`status`,
:meth:`result`, :meth:`cancel`, plus :meth:`watch` for streamed
scenario-level progress and :meth:`wait` for simple polling.

Server-side refusals arrive as error frames and raise
:class:`~repro.errors.ServeError`; transport/framing trouble raises
:class:`~repro.fleet.protocol.ProtocolError` — the same split callers
of the fleet backend already handle.
"""

from __future__ import annotations

import socket
import sys
import threading
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.fleet import protocol
from repro.fleet.worker import parse_address
from repro.sweep.report import SweepReport

#: Seconds to wait for the daemon to accept a connection.
CONNECT_TIMEOUT_S = 5.0

#: Default per-response timeout.  Generous: ``watch`` can legitimately
#: sit idle between scenario events of a long sweep.
RESPONSE_TIMEOUT_S = 600.0


class ServeClient:
    """One persistent client connection to a sweep service daemon."""

    def __init__(
        self,
        address: str,
        secret: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self.address = address
        self.host, self.port = parse_address(address, default_port=9462)
        self.secret = secret or None
        self.timeout = timeout if timeout is not None else RESPONSE_TIMEOUT_S
        self.hello: Optional[dict] = None
        self._lock = threading.Lock()
        self._sock: Optional[socket.socket] = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=CONNECT_TIMEOUT_S
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.timeout)
            try:
                hello = protocol.recv_message(sock)
                if not hello or hello.get("type") != "hello":
                    raise protocol.ProtocolError(
                        f"service {self.address} did not say hello"
                    )
                if hello.get("version") != protocol.PROTOCOL_VERSION:
                    raise protocol.ProtocolError(
                        f"service {self.address} speaks protocol version "
                        f"{hello.get('version')}, client speaks "
                        f"{protocol.PROTOCOL_VERSION}"
                    )
                self._authenticate(sock, hello)
            except protocol.ProtocolError:
                sock.close()
                raise
            self.hello = hello
            self._sock = sock
        return self._sock

    def _authenticate(self, sock: socket.socket, hello: dict) -> None:
        challenge = hello.get("auth")
        if not isinstance(challenge, dict):
            return
        nonce = challenge.get("nonce")
        if not isinstance(nonce, str):
            return
        if not self.secret:
            raise protocol.ProtocolError(
                f"service {self.address} requires a shared secret; set "
                f"fleet.secret (or REPRO_FLEET_SECRET)"
            )
        protocol.send_message(sock, protocol.auth_message(self.secret, nonce))
        answer = protocol.recv_message(sock)
        if not answer or answer.get("type") != "auth_ok":
            raise protocol.ProtocolError(
                f"service {self.address} rejected the shared secret"
            )

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self.hello = None

    def _recv(self) -> dict:
        """One response frame, with error frames raised as ServeError."""
        response = protocol.recv_message(self._sock)
        if response is None:
            self._drop()
            raise protocol.ProtocolError(
                f"service {self.address} closed the connection mid-request"
            )
        if response.get("type") == "error":
            raise ServeError(
                response.get("error", "sweep service refused the request")
            )
        return response

    def request(self, message: dict) -> dict:
        """One request/response round trip (connecting if needed)."""
        with self._lock:
            sock = self._connect()
            try:
                protocol.send_message(sock, message)
                return self._recv()
            except (OSError, protocol.ProtocolError):
                self._drop()
                raise

    # ------------------------------------------------------------------
    # verbs
    # ------------------------------------------------------------------
    def ping(self) -> bool:
        try:
            return self.request({"type": "ping"}).get("type") == "pong"
        except (OSError, protocol.ProtocolError):
            return False

    def submit(
        self,
        plan,
        resume: Optional[SweepReport] = None,
        label: Optional[str] = None,
    ) -> Dict[str, Any]:
        """Submit a :class:`~repro.sweep.SweepPlan`; returns the queued
        job's description.  ``resume`` is an archived report whose
        config-hash-matched scenarios the service will not re-run."""
        message = protocol.submit_message(
            protocol.plan_to_wire(plan),
            resume=resume.to_dict() if resume is not None else None,
            label=label,
        )
        return self._job_reply(self.request(message))

    def jobs(self) -> List[Dict[str, Any]]:
        """Every job the daemon knows, in submission order."""
        response = self.request({"type": "job_list"})
        return list(response.get("jobs", []))

    def status(self, job_id: str) -> Dict[str, Any]:
        return self._job_reply(
            self.request(protocol.job_request_message("job_status", job_id))
        )

    def result(self, job_id: str) -> SweepReport:
        """A finished job's archived :class:`SweepReport`."""
        response = self.request(
            protocol.job_request_message("job_result", job_id)
        )
        return SweepReport.from_dict(response.get("report", {}))

    def cancel(self, job_id: str) -> Dict[str, Any]:
        return self._job_reply(
            self.request(protocol.job_request_message("job_cancel", job_id))
        )

    def watch(
        self,
        job_id: str,
        callback: Optional[Callable[[Dict[str, Any]], None]] = None,
        max_retries: int = 5,
        backoff_s: float = 0.5,
    ) -> Dict[str, Any]:
        """Stream a job's progress until it lands; returns its final
        state.  ``callback`` sees every scenario-level event.

        A transient transport drop (worker restart, flaky link) does not
        kill the stream: the client reconnects with exponential backoff
        and resubscribes by job id — the service replays a terminal
        job's final state on resubscribe, so a job that finished during
        the outage is still reported.  Each reconnect surfaces as a
        one-line notice on stderr; only ``max_retries`` *consecutive*
        failed attempts re-raise (any received progress frame resets
        the count).  Server-side refusals (:class:`ServeError`, e.g. an
        unknown job id) are never retried.
        """
        attempts = 0
        while True:
            try:
                with self._lock:
                    sock = self._connect()
                    try:
                        protocol.send_message(
                            sock,
                            protocol.job_request_message("job_watch", job_id),
                        )
                        while True:
                            response = self._recv()
                            kind = response.get("type")
                            if kind == "progress":
                                attempts = 0
                                if callback is not None:
                                    callback(dict(response.get("event", {})))
                            elif kind == "job":
                                return dict(response.get("job", {}))
                            # Unknown frame kinds are skipped
                            # (version tolerance).
                    except (OSError, protocol.ProtocolError):
                        self._drop()
                        raise
            except (OSError, protocol.ProtocolError) as exc:
                attempts += 1
                if attempts > max_retries:
                    raise
                delay = backoff_s * (2 ** (attempts - 1))
                print(
                    f"watch: connection to {self.address} dropped "
                    f"({exc}); reconnecting in {delay:.1f}s "
                    f"(attempt {attempts}/{max_retries})",
                    file=sys.stderr,
                )
                time.sleep(delay)

    def wait(
        self,
        job_id: str,
        timeout: Optional[float] = None,
        poll_s: float = 0.1,
    ) -> Dict[str, Any]:
        """Poll until the job reaches a terminal state (or timeout)."""
        deadline = (
            time.monotonic() + timeout if timeout is not None else None
        )
        while True:
            job = self.status(job_id)
            if job.get("state") in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"job {job_id} still {job.get('state')} after "
                    f"{timeout:g}s"
                )
            time.sleep(poll_s)

    # ------------------------------------------------------------------
    @staticmethod
    def _job_reply(response: dict) -> Dict[str, Any]:
        if response.get("type") != "job":
            raise ServeError(
                f"unexpected reply type {response.get('type')!r} "
                f"(wanted 'job')"
            )
        return dict(response.get("job", {}))

    def close(self) -> None:
        with self._lock:
            if self._sock is not None:
                try:
                    protocol.send_message(self._sock, {"type": "bye"})
                except (OSError, protocol.ProtocolError):
                    pass
            self._drop()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = ["ServeClient"]
