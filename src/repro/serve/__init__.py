"""repro.serve — the resident sweep service.

One daemon process (``repro serve --listen HOST:PORT``) owns one
:class:`~repro.session.Session` — one shared stats cache, one
executor/fleet backend — and multiplexes many clients onto it over the
fleet wire protocol.  That is the paper's traffic model made concrete:
overlapping scenario matrices submitted by independent users hit one
measurement substrate, so the millionth AlexNet sweep is nearly all
cache hits.

* :class:`Job` / :class:`JobQueue` — submissions with states
  (``queued`` → ``running`` → ``done``/``failed``/``cancelled``),
  cooperative cancellation, and per-job progress subscription;
* :class:`SweepService` — the threading TCP server: accepts
  ``submit_sweep``/``job_*`` messages, runs jobs one at a time on an
  executor thread (cross-job dedup comes from the shared cache), and
  archives every finished ``SweepReport`` as JSON that feeds straight
  into ``repro report diff`` and ``--resume``;
* :class:`ServeClient` — the blocking client behind ``repro submit`` /
  ``jobs`` / ``status`` / ``result`` / ``cancel``, with progress
  streaming via :meth:`~ServeClient.watch`.

Results are bit-identical to the same plan run via ``repro sweep``
locally: submissions travel as resolved config dicts and replay through
the exact same :class:`~repro.sweep.SweepRunner` path.
"""

from repro.serve.client import ServeClient
from repro.serve.jobs import JOB_STATES, Job, JobQueue
from repro.serve.server import SweepService, serve

__all__ = [
    "JOB_STATES",
    "Job",
    "JobQueue",
    "ServeClient",
    "SweepService",
    "serve",
]
