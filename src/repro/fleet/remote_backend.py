"""The ``remote`` executor backend: fan a miss batch out across workers.

:class:`RemoteBackend` is an :class:`~repro.engine.backends.ExecutorBackend`
registered as ``"remote"``, so the whole existing measurement path —
``Tuner.tune`` → ``TuningTask.measure_batch`` →
``EvaluationEngine.evaluate_many`` — fans a GA generation out across
machines with zero changes to the tuner: the engine still splits hits
from misses, and only the misses travel.

Execution model per batch:

* the batch is sharded round-robin across the configured workers
  (``host:port`` addresses — constructor argument, CLI ``--workers``,
  or the ``REPRO_FLEET_WORKERS`` environment variable);
* shards run concurrently on one client thread per worker, over
  persistent connections (the hello handshake is paid once per worker,
  controller rebuilds once per engine fingerprint per worker);
* a shard whose worker dies mid-batch is *retried* on the surviving
  workers, in shard-sized pieces, so one crash costs one round trip,
  not the sweep;
* when no worker is reachable — or the engine is not remotable (mock
  configs) — the shard falls back to inline serial execution, so
  ``--executor remote`` degrades to ``--executor serial`` instead of
  failing a run.

Per-item errors (invalid mappings and friends) are captured exception
entries, exactly like every other backend; worker-side
:mod:`repro.errors` types round-trip by name so callers' ``isinstance``
checks keep working across the wire.
"""

from __future__ import annotations

import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.engine.backends import (
    ExecutorBackend,
    WorkItem,
    WorkResult,
    _simulate_item,
    register_backend,
)
from repro.fleet import protocol
from repro.fleet.worker import parse_address
from repro.obs.trace import TRACER

#: Environment variable naming the default worker pool
#: (comma-separated ``host:port`` list).
WORKERS_ENV = "REPRO_FLEET_WORKERS"

#: Seconds to wait for a worker connection before declaring it dead.
CONNECT_TIMEOUT_S = 5.0

#: Default seconds to wait for a shard's results (the
#: ``fleet.shard_timeout`` config knob overrides it).  Generous: a shard
#: is many simulations; this bound only catches hung peers, not slow
#: ones — the *scheduler's* ``engine.steal_deadline`` (seconds, much
#: shorter) is what re-splits a slow worker's chunk onto idle peers, so
#: this timeout now only has to catch connections that are truly wedged.
BATCH_TIMEOUT_S = 600.0


def _env_workers() -> List[str]:
    raw = os.environ.get(WORKERS_ENV, "")
    return [part.strip() for part in raw.split(",") if part.strip()]


class _WorkerLink:
    """One persistent connection to one worker, used by one client thread
    at a time (the per-link lock covers retries landing on a survivor
    that is mid-shard)."""

    def __init__(
        self,
        address: str,
        timeout: Optional[float] = None,
        secret: Optional[str] = None,
    ) -> None:
        self.address = address
        self.host, self.port = parse_address(address)
        self.timeout = timeout if timeout is not None else BATCH_TIMEOUT_S
        self.secret = secret or None
        self.lock = threading.Lock()
        self._sock: Optional[socket.socket] = None
        self.hello: Optional[dict] = None

    def _connect(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=CONNECT_TIMEOUT_S
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            sock.settimeout(self.timeout)
            hello = protocol.recv_message(sock)
            if not hello or hello.get("type") != "hello":
                sock.close()
                raise protocol.ProtocolError(
                    f"worker {self.address} did not say hello"
                )
            if hello.get("version") != protocol.PROTOCOL_VERSION:
                sock.close()
                raise protocol.ProtocolError(
                    f"worker {self.address} speaks protocol version "
                    f"{hello.get('version')}, client speaks "
                    f"{protocol.PROTOCOL_VERSION}"
                )
            try:
                self._authenticate(sock, hello)
            except protocol.ProtocolError:
                sock.close()
                raise
            self.hello = hello
            self._sock = sock
        return self._sock

    def _authenticate(self, sock: socket.socket, hello: dict) -> None:
        """Answer the hello's HMAC challenge, if it carries one.

        An unsecured worker (no challenge) is always accepted — the
        secret is opt-in per daemon.  A secured worker with no local
        secret, or one that rejects the digest, raises
        :class:`~repro.fleet.protocol.ProtocolError` before the link is
        considered connected.
        """
        challenge = hello.get("auth")
        if not isinstance(challenge, dict):
            return
        nonce = challenge.get("nonce")
        if not isinstance(nonce, str):
            return
        if not self.secret:
            raise protocol.ProtocolError(
                f"worker {self.address} requires a shared secret; set "
                f"fleet.secret (or REPRO_FLEET_SECRET)"
            )
        protocol.send_message(
            sock, protocol.auth_message(self.secret, nonce)
        )
        answer = protocol.recv_message(sock)
        if not answer or answer.get("type") != "auth_ok":
            raise protocol.ProtocolError(
                f"worker {self.address} rejected the shared secret"
            )

    def ensure_connected(self) -> Optional[dict]:
        """Connect (if needed) and return the worker's hello, or None
        when the worker is unreachable."""
        with self.lock:
            try:
                self._connect()
            except (OSError, protocol.ProtocolError):
                self.drop()
                return None
            return self.hello

    @property
    def capacity(self) -> int:
        """The worker's advertised weight (1 for pre-capacity workers)."""
        hello = self.hello or {}
        try:
            return max(1, int(hello.get("capacity", 1)))
        except (TypeError, ValueError):
            return 1

    def request(self, message: dict) -> dict:
        """One request/response round trip (connecting if needed)."""
        with self.lock:
            sock = self._connect()
            try:
                protocol.send_message(sock, message)
                response = protocol.recv_message(sock)
            except (OSError, protocol.ProtocolError):
                self.drop()
                raise
            if response is None:
                self.drop()
                raise protocol.ProtocolError(
                    f"worker {self.address} closed the connection mid-request"
                )
            return response

    def drop(self) -> None:
        """Forget the connection (next request reconnects or fails)."""
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
            self.hello = None

    def close(self) -> None:
        with self.lock:
            if self._sock is not None:
                try:
                    protocol.send_message(self._sock, {"type": "bye"})
                except (OSError, protocol.ProtocolError):
                    pass
            self.drop()


@register_backend("remote")
class RemoteBackend(ExecutorBackend):
    """Ship cache-miss batches to fleet workers over the wire protocol.

    Args:
        workers: ``host:port`` addresses.  When omitted, resolved from
            the :data:`WORKERS_ENV` environment variable at run time, so
            a sweep script can be pointed at a fleet without code
            changes.
        max_workers: Accepted for registry-constructor uniformity;
            parallelism is one client thread per *remote* worker.
        shard_timeout: Seconds to wait for one shard's results before
            declaring the connection dead (the ``fleet.shard_timeout``
            knob); defaults to :data:`BATCH_TIMEOUT_S`.  Orthogonal to
            the scheduler's ``engine.steal_deadline``: the deadline
            re-splits a *slow* worker's chunk onto idle peers (seconds),
            the timeout abandons a *wedged* connection (minutes).
    """

    name = "remote"

    def __init__(
        self,
        workers: Union[Sequence[str], str, None] = None,
        max_workers: Optional[int] = None,
        shard_timeout: Optional[float] = None,
        secret: Optional[str] = None,
    ) -> None:
        if isinstance(workers, str):
            workers = [part.strip() for part in workers.split(",") if part.strip()]
        self._configured = list(workers) if workers else None
        self.max_workers = max_workers
        self.shard_timeout = shard_timeout
        self.secret = secret or None
        self._links: Dict[str, _WorkerLink] = {}
        self._links_lock = threading.Lock()
        #: Batches (shards) that fell back to inline serial execution.
        self.fallback_batches = 0
        #: Shards retried on a surviving worker after a peer died.
        self.retried_shards = 0

    # ------------------------------------------------------------------
    def _addresses(self) -> List[str]:
        return list(self._configured) if self._configured else _env_workers()

    def _link(self, address: str) -> _WorkerLink:
        with self._links_lock:
            link = self._links.get(address)
            if link is None:
                link = _WorkerLink(
                    address, timeout=self.shard_timeout, secret=self.secret
                )
                self._links[address] = link
            return link

    def _capacities(self, addresses: List[str]) -> Dict[str, int]:
        """Advertised capacity per *reachable* address (probed now)."""
        capacities: Dict[str, int] = {}
        for address in addresses:
            link = self._link(address)
            if link.ensure_connected() is not None:
                capacities[address] = link.capacity
        return capacities

    # ------------------------------------------------------------------
    def run(self, engine, items, max_workers=None):
        addresses = self._addresses()
        if not items:
            return []
        try:
            spec = protocol.engine_spec(engine)
        except protocol.ProtocolError:
            spec = None  # not remotable (mock config); run inline
        if not addresses or spec is None:
            self.fallback_batches += 1
            return [_simulate_item(engine, item) for item in items]

        indexed = [
            (position, key, request.layer, request.mapping)
            for position, (key, request) in enumerate(items)
        ]
        capacities = self._capacities(addresses)
        if capacities:
            # Capacity-weighted sharding: each reachable worker appears
            # once per advertised capacity unit in the stride base, so a
            # capacity-2 worker's single shard carries twice the items.
            expanded = [
                address
                for address in addresses
                if address in capacities
                for _ in range(capacities[address])
            ]
            strides = [indexed[i :: len(expanded)] for i in range(len(expanded))]
            by_address: Dict[str, List[Tuple]] = {}
            for address, stride in zip(expanded, strides):
                by_address.setdefault(address, []).extend(stride)
            pairs = [
                (address, sorted(shard))
                for address, shard in by_address.items()
                if shard
            ]
        else:
            # Nothing answered the probe: keep the legacy equal
            # sharding over every configured address, so each shard
            # walks the usual retry-then-inline-fallback path and the
            # failure counters stay exactly as before.
            shards = [indexed[i :: len(addresses)] for i in range(len(addresses))]
            pairs = [
                (address, shard)
                for address, shard in zip(addresses, shards)
                if shard
            ]
        results: List[Optional[WorkResult]] = [None] * len(items)
        with ThreadPoolExecutor(max_workers=len(pairs)) as pool:
            shard_outcomes = pool.map(
                lambda pair: self._run_shard(
                    engine, spec, pair[1], preferred=pair[0],
                    all_addresses=addresses,
                ),
                pairs,
            )
            for outcome in shard_outcomes:
                for position, result in outcome:
                    results[position] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def pull_slots(self, engine, max_workers=None):
        """One scheduler slot per advertised capacity unit per reachable
        worker — ``(address, unit)`` tokens.  Empty (static fallback)
        when the engine is not remotable or no worker answers."""
        addresses = self._addresses()
        if not addresses:
            return []
        try:
            protocol.engine_spec(engine)
        except protocol.ProtocolError:
            return []
        capacities = self._capacities(addresses)
        return [
            (address, unit)
            for address in addresses
            for unit in range(capacities.get(address, 0))
        ]

    def run_chunk(self, engine, items, slot=None):
        """Execute one scheduler chunk on the slot's worker.

        Reuses the shard machinery — retry on survivors, then inline
        serial fallback — so a worker crash mid-chunk degrades exactly
        like a crash mid-shard.
        """
        addresses = self._addresses()
        try:
            spec = protocol.engine_spec(engine)
        except protocol.ProtocolError:
            spec = None
        if not addresses or spec is None:
            self.fallback_batches += 1
            return [_simulate_item(engine, item) for item in items]
        indexed = [
            (position, key, request.layer, request.mapping)
            for position, (key, request) in enumerate(items)
        ]
        preferred = slot[0] if isinstance(slot, tuple) else addresses[0]
        results: List[Optional[WorkResult]] = [None] * len(items)
        for position, result in self._run_shard(
            engine, spec, indexed, preferred=preferred, all_addresses=addresses
        ):
            results[position] = result
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _run_shard(
        self,
        engine,
        spec: dict,
        shard: List[Tuple],
        preferred: str,
        all_addresses: List[str],
    ) -> List[Tuple[int, WorkResult]]:
        """Execute one shard: preferred worker, then survivors, then inline.

        Returns (position, (key, stats-or-exception)) pairs.
        """
        by_pos = {position: (key, layer, mapping)
                  for position, key, layer, mapping in shard}
        candidates = [preferred] + [a for a in all_addresses if a != preferred]
        message = protocol.evaluate_batch_message(spec, shard)
        registry = self.metrics
        with TRACER.span(
            "fleet.shard", category="fleet",
            lane=f"fleet-{preferred}", items=len(shard),
        ) as span:
            for attempt, address in enumerate(candidates):
                try:
                    response = self._link(address).request(message)
                except (OSError, protocol.ProtocolError):
                    registry.counter(f"fleet.errors.{address}").inc()
                    continue  # worker dead/unreachable; try a survivor
                if response.get("type") == "error":
                    # Batch-fatal worker refusal (fingerprint/spec skew):
                    # retrying elsewhere cannot help less, but inline can.
                    break
                if response.get("type") != "results":
                    continue
                if attempt > 0:
                    self.retried_shards += 1
                    registry.counter("fleet.retried_shards").inc()
                span.set(served_by=address)
                registry.counter(f"fleet.shards.{address}").inc()
                registry.counter(f"fleet.items.{address}").inc(len(shard))
                self._record_worker_timing(address, response, registry)
                return self._decode_results(engine, response, by_pos)
            span.set(fallback=True)
        # No worker produced results: inline serial fallback.
        self.fallback_batches += 1
        registry.counter("fleet.fallback_batches").inc()
        return [
            (
                position,
                _simulate_item(
                    engine,
                    (key, _Request(layer, mapping)),
                ),
            )
            for position, (key, layer, mapping) in (
                (p, by_pos[p]) for p in sorted(by_pos)
            )
        ]

    def _record_worker_timing(self, address, response, registry) -> None:
        """Absorb a worker's self-reported ``timing`` (optional key).

        Old workers omit it — version skew degrades to "no remote
        spans, no per-worker health", never an error.  The worker's
        clock is not synchronised with ours, so its span is
        right-aligned inside the just-finished local round trip.
        """
        timing = response.get("timing")
        if not isinstance(timing, dict):
            return
        try:
            duration = float(timing.get("duration_s", 0.0))
        except (TypeError, ValueError):
            return
        registry.histogram("fleet.worker_duration_s").observe(duration)
        for key in ("cache_hits", "simulated"):
            value = timing.get(key)
            if isinstance(value, int):
                registry.counter(f"fleet.{key}.{address}").inc(value)
        pid = timing.get("pid")
        if isinstance(pid, int):
            registry.gauge(f"fleet.pid.{address}").set(pid)
        if TRACER.enabled:
            client_end = time.perf_counter()
            TRACER.add_span(
                "fleet.worker", "fleet", f"fleet-{address}",
                start=client_end - duration, duration=duration,
                attrs=dict(timing, address=address),
            )

    @staticmethod
    def _decode_results(engine, response: dict, by_pos: dict):
        from repro.stonne.stats import SimulationStats

        out: List[Tuple[int, WorkResult]] = []
        seen = set()
        for entry in response.get("items", []):
            position = entry.get("pos")
            if position not in by_pos or position in seen:
                continue  # unknown or duplicate position: ignore
            key = by_pos[position][0]
            if "stats" in entry:
                try:
                    stats = SimulationStats.from_dict(entry["stats"])
                except (KeyError, TypeError, ValueError):
                    continue  # undecodable entry: leave it for the
                    # inline remainder pass below (skewed peer)
                seen.add(position)
                out.append((position, (key, stats)))
            else:
                seen.add(position)
                out.append(
                    (position, (key, protocol.exception_from_wire(entry)))
                )
        # A worker that dropped items (foreign/buggy peer) still owes the
        # engine answers: simulate the remainder inline.
        for position in sorted(set(by_pos) - seen):
            key, layer, mapping = by_pos[position]
            out.append(
                (position, _simulate_item(engine, (key, _Request(layer, mapping))))
            )
        return out

    # ------------------------------------------------------------------
    def ping(self) -> Dict[str, bool]:
        """Reachability of every configured worker (health checks)."""
        status: Dict[str, bool] = {}
        for address in self._addresses():
            try:
                response = self._link(address).request({"type": "ping"})
                status[address] = response.get("type") == "pong"
            except (OSError, protocol.ProtocolError):
                status[address] = False
        return status

    def close(self) -> None:
        with self._links_lock:
            for link in self._links.values():
                link.close()
            self._links.clear()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RemoteBackend(workers={self._addresses()!r})"


def resolve_executor(
    executor,
    workers: Union[Sequence[str], str, None] = None,
    max_workers: Optional[int] = None,
    shard_timeout: Optional[float] = None,
    secret: Optional[str] = None,
):
    """The executor an engine should use given an optional fleet.

    A non-empty ``workers`` list (or comma-separated string) implies the
    remote backend unless a *different* executor is explicitly named —
    the single rule shared by the CLI's ``--workers`` flag and
    ``make_session(workers=...)``, so the two can never diverge.
    """
    if workers and executor in (None, "remote"):
        return RemoteBackend(
            workers=workers,
            max_workers=max_workers,
            shard_timeout=shard_timeout,
            secret=secret,
        )
    return executor


class _Request:
    """Minimal EvalRequest stand-in for inline fallback simulation."""

    __slots__ = ("layer", "mapping")

    def __init__(self, layer, mapping) -> None:
        self.layer = layer
        self.mapping = mapping
