"""The fleet wire protocol: length-prefixed JSON frames.

Every message between a :class:`~repro.fleet.remote_backend.RemoteBackend`
client and a :class:`~repro.fleet.worker.FleetWorker` daemon is one
*frame*: a 4-byte big-endian payload length followed by that many bytes
of UTF-8 JSON.  Framing is the entire transport contract — JSON keeps
the protocol debuggable with ``nc`` and version-tolerant (unknown keys
are ignored), and the length prefix makes truncation detectable: a
stream that ends mid-frame raises :class:`ProtocolError` instead of
silently yielding a partial batch.

Message vocabulary (the ``type`` field):

* ``hello`` — sent by the worker on accept: protocol version, pid, and
  the controller types it can rebuild (capabilities);
* ``evaluate_batch`` — client request: an engine spec (fingerprint +
  config/params/controller type + functional flag) and a list of
  ``(pos, key, layer, mapping)`` items;
* ``results`` — worker response: per-item ``(pos, key, stats)`` or
  ``(pos, error, error_type)`` entries, submission order preserved;
* ``ping``/``pong`` — heartbeat;
* ``bye`` — polite client disconnect.

The sweep service (:mod:`repro.serve`) speaks the same framing with its
own vocabulary: ``submit_sweep`` (a serialized
:class:`~repro.sweep.SweepPlan`, optionally with a resume archive),
``job_list``/``job_status``/``job_result``/``job_cancel``/``job_watch``
requests, ``job``/``jobs``/``job_result`` replies, and streamed
``progress`` events while a watch is active.

Both daemons support opt-in shared-secret authentication: a secured
peer's ``hello`` carries an ``auth`` challenge (scheme + random nonce)
and the first client message must be an ``auth`` frame whose digest is
``HMAC-SHA256(secret, nonce)`` — the secret itself never crosses the
wire.  A missing or wrong digest is answered with an ``error`` frame
and the connection is dropped before any state changes; clients raise
:class:`ProtocolError`.

Everything that crosses the wire is *structural*: layers and mappings
are dataclasses of plain scalars, cache keys are tuples of scalars
(JSON arrays on the wire, frozen back to tuples on arrival — the same
round-trip the JSONL cache tier uses), and the engine spec rebuilds a
bit-identical controller because
:func:`~repro.engine.evaluation.fingerprint_config` is recomputed and
verified on the worker side.
"""

from __future__ import annotations

import hashlib
import hmac
import json
import secrets
import socket
import struct
from dataclasses import asdict
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.errors import ReproError, SimulationError
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.params import CycleModelParams
from repro.stonne.stats import SimulationStats

#: Protocol version; bumped on incompatible frame/message changes.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's payload.  A generation-sized batch of
#: conv layers is a few hundred kilobytes; anything near this bound is a
#: corrupt or hostile length prefix, not a real batch.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_LENGTH = struct.Struct(">I")


class ProtocolError(ReproError):
    """A malformed, truncated or oversized fleet protocol frame."""


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(message: Dict[str, Any]) -> bytes:
    """One wire frame: 4-byte big-endian length + UTF-8 JSON payload."""
    payload = json.dumps(message, default=str).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame payload of {len(payload)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte protocol limit"
        )
    return _LENGTH.pack(len(payload)) + payload


def decode_frame(data: bytes) -> Tuple[Dict[str, Any], bytes]:
    """Decode one complete frame from ``data``; returns (message, rest).

    Raises :class:`ProtocolError` when ``data`` holds a truncated frame
    or an oversized length prefix.  (Socket paths use
    :func:`recv_message`; this byte-level form is for tests and for
    buffering transports.)
    """
    if len(data) < _LENGTH.size:
        raise ProtocolError(
            f"truncated frame: {len(data)} bytes is shorter than the "
            f"{_LENGTH.size}-byte length prefix"
        )
    (length,) = _LENGTH.unpack(data[: _LENGTH.size])
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
            f"protocol limit"
        )
    end = _LENGTH.size + length
    if len(data) < end:
        raise ProtocolError(
            f"truncated frame: payload needs {length} bytes, got "
            f"{len(data) - _LENGTH.size}"
        )
    try:
        message = json.loads(data[_LENGTH.size : end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"frame payload is not valid JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(
            f"frame payload must be a JSON object, got {type(message).__name__}"
        )
    return message, data[end:]


def _recv_exact(sock: socket.socket, count: int) -> Optional[bytes]:
    """Read exactly ``count`` bytes; None on clean EOF at offset 0."""
    chunks: List[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if remaining == count:
                return None  # clean EOF between frames
            raise ProtocolError(
                f"connection closed mid-frame ({count - remaining} of "
                f"{count} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, message: Dict[str, Any]) -> None:
    """Send one message as a single frame."""
    sock.sendall(encode_frame(message))


def recv_message(sock: socket.socket) -> Optional[Dict[str, Any]]:
    """Receive one message; None when the peer closed between frames."""
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame length {length} exceeds the {MAX_FRAME_BYTES}-byte "
            f"protocol limit"
        )
    payload = _recv_exact(sock, length)
    if payload is None:  # EOF exactly after the prefix
        raise ProtocolError("connection closed mid-frame (after length prefix)")
    message, rest = decode_frame(prefix + payload)
    assert not rest
    return message


# ----------------------------------------------------------------------
# structural (de)serialization
# ----------------------------------------------------------------------
_LAYER_KINDS = {
    "ConvLayer": ConvLayer,
    "FcLayer": FcLayer,
    "GemmLayer": GemmLayer,
}
_MAPPING_KINDS = {"ConvMapping": ConvMapping, "FcMapping": FcMapping}


def layer_to_wire(layer) -> Dict[str, Any]:
    return {"kind": type(layer).__name__, "fields": asdict(layer)}


def layer_from_wire(data: Dict[str, Any]):
    try:
        cls = _LAYER_KINDS[data["kind"]]
        return cls(**data["fields"])
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed wire layer {data!r}: {exc}") from exc


def mapping_to_wire(mapping) -> Optional[Dict[str, Any]]:
    if mapping is None:
        return None
    return {"kind": type(mapping).__name__, "fields": asdict(mapping)}


def mapping_from_wire(data: Optional[Dict[str, Any]]):
    if data is None:
        return None
    try:
        cls = _MAPPING_KINDS[data["kind"]]
        return cls(**data["fields"])
    except (KeyError, TypeError) as exc:
        raise ProtocolError(f"malformed wire mapping {data!r}: {exc}") from exc


def key_from_wire(key):
    """Freeze a JSON-decoded cache key back into nested tuples."""
    from repro.engine.cache import _freeze

    return _freeze(key)


def engine_spec(engine) -> Dict[str, Any]:
    """The serializable description a worker needs to rebuild ``engine``'s
    controller: config, params, controller type and the fingerprint the
    rebuild must reproduce.

    Raises :class:`ProtocolError` for engines whose config cannot cross
    the wire (duck-typed mocks without ``to_dict``) — callers treat that
    as "not remotable" and fall back to local execution.
    """
    config = engine.config
    if not hasattr(config, "to_dict"):
        raise ProtocolError(
            f"engine config {type(config).__name__} has no to_dict(); "
            f"only real SimulatorConfigs can be shipped to fleet workers"
        )
    return {
        "fingerprint": engine.fingerprint,
        "controller_type": str(
            getattr(config.controller_type, "value", config.controller_type)
        ),
        "config": config.to_dict(),
        "params": asdict(engine.params),
        "functional": bool(engine.functional),
    }


def rebuild_controller(spec: Dict[str, Any]):
    """(controller, params, functional) rebuilt from an engine spec.

    The controller class is resolved through the registry and the
    fingerprint recomputed; a mismatch (version skew, foreign controller
    registration) raises :class:`ProtocolError` rather than silently
    producing stats under the wrong cache identity.
    """
    from repro.engine.evaluation import fingerprint_config
    from repro.stonne.config import SimulatorConfig
    from repro.stonne.controller import controller_class

    try:
        config = SimulatorConfig.from_dict(spec["config"])
        params = CycleModelParams(**spec["params"])
        cls = controller_class(spec["controller_type"])
    except (KeyError, TypeError, ReproError) as exc:
        raise ProtocolError(f"cannot rebuild engine spec: {exc}") from exc
    fingerprint = fingerprint_config(config, params, cls)
    if fingerprint != spec.get("fingerprint"):
        raise ProtocolError(
            f"engine fingerprint mismatch: client sent "
            f"{spec.get('fingerprint')!r}, worker rebuilt {fingerprint!r} "
            f"(version or registration skew between fleet peers)"
        )
    return cls(config, params), params, bool(spec.get("functional", False))


# ----------------------------------------------------------------------
# shared-secret authentication
# ----------------------------------------------------------------------
#: The only auth scheme the protocol speaks today (TLS is the follow-on).
AUTH_SCHEME = "hmac-sha256"


def make_nonce() -> str:
    """A fresh per-connection challenge nonce."""
    return secrets.token_hex(16)


def auth_digest(secret: str, nonce: str) -> str:
    """``HMAC-SHA256(secret, nonce)`` — what an ``auth`` frame carries.

    The secret never crosses the wire; a passive observer of one
    handshake cannot replay it against a different nonce.
    """
    return hmac.new(
        secret.encode("utf-8"), nonce.encode("utf-8"), hashlib.sha256
    ).hexdigest()


def auth_message(secret: str, nonce: str) -> Dict[str, Any]:
    """The client's answer to a hello's ``auth`` challenge."""
    return {"type": "auth", "digest": auth_digest(secret, nonce)}


def verify_auth(secret: str, nonce: str, message: Dict[str, Any]) -> bool:
    """Constant-time check of an ``auth`` frame against the challenge."""
    digest = message.get("digest")
    if message.get("type") != "auth" or not isinstance(digest, str):
        return False
    return hmac.compare_digest(digest, auth_digest(secret, nonce))


# ----------------------------------------------------------------------
# message builders
# ----------------------------------------------------------------------
def hello_message(
    capabilities: List[str],
    pid: int,
    capacity: int = 1,
    nonce: Optional[str] = None,
) -> Dict[str, Any]:
    """The worker's greeting.  ``capacity`` is its advertised weight —
    how many concurrent shard units the operator sized it for — which
    the remote backend uses to seed proportional shard sizes; absent
    (older workers) it defaults to 1 on the client side.  ``nonce``
    (secured daemons only) attaches the shared-secret auth challenge
    the client must answer before anything else."""
    message = {
        "type": "hello",
        "version": PROTOCOL_VERSION,
        "pid": pid,
        "capabilities": sorted(capabilities),
        "capacity": int(capacity),
    }
    if nonce is not None:
        message["auth"] = {"scheme": AUTH_SCHEME, "nonce": nonce}
    return message


def evaluate_batch_message(
    spec: Dict[str, Any],
    items: List[Tuple[int, Optional[Hashable], Any, Any]],
) -> Dict[str, Any]:
    """An ``evaluate_batch`` request for (pos, key, layer, mapping) items."""
    return {
        "type": "evaluate_batch",
        "version": PROTOCOL_VERSION,
        "spec": spec,
        "items": [
            {
                "pos": pos,
                "key": key,
                "layer": layer_to_wire(layer),
                "mapping": mapping_to_wire(mapping),
            }
            for pos, key, layer, mapping in items
        ],
    }


def results_message(
    entries: List[Dict[str, Any]],
    timing: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """A batch result; ``timing`` optionally carries worker-side
    observability (pid, duration, cache hits).  It rides as an extra
    key old clients ignore and old workers simply omit — version skew
    in either direction degrades to "no remote spans", never an error.
    """
    message = {"type": "results", "items": entries}
    if timing is not None:
        message["timing"] = timing
    return message


def error_message(error: Exception) -> Dict[str, Any]:
    """A batch-fatal error response (spec rebuild failures etc.)."""
    return {
        "type": "error",
        "error": str(error),
        "error_type": type(error).__name__,
    }


# ----------------------------------------------------------------------
# sweep-service vocabulary (repro.serve)
# ----------------------------------------------------------------------
def plan_to_wire(plan) -> Dict[str, Any]:
    """Serialize a :class:`~repro.sweep.SweepPlan` for submission.

    Everything a scenario carries is structural (resolved config dict,
    zoo model name, kind, labels) *except* ``target`` — a bare in-memory
    layer descriptor standing in for (model, layer) — which cannot be
    archived or resubmitted and therefore cannot cross the wire.

    Only the *result-determining* config sections cross the wire
    (:func:`~repro.sweep.resume.result_config`: architecture, the
    functional flag, tuning).  Environmental sections stay client-side —
    the daemon runs every job against its own executor, cache and fleet,
    and ``fleet.secret`` in particular must never ride a frame: shipping
    it would hand the shared secret to any passive observer and defeat
    the challenge-response design.
    """
    from repro.sweep.resume import result_config

    scenarios = []
    for scenario in plan.scenarios:
        if scenario.target is not None:
            raise ProtocolError(
                f"scenario {scenario.name!r} carries a bare layer target; "
                f"only zoo-model scenarios can be submitted to a sweep "
                f"service"
            )
        scenarios.append(
            {
                "name": scenario.name,
                "config": result_config(scenario.config),
                "model": scenario.model,
                "kind": scenario.kind,
                "layer": scenario.layer,
                "profile": scenario.profile,
                "overrides": [
                    [key, value] for key, value in scenario.overrides
                ],
            }
        )
    return {"scenarios": scenarios}


def plan_from_wire(data: Dict[str, Any]):
    """Rebuild a validated :class:`~repro.sweep.SweepPlan` from its wire
    form (bad configs, kinds or models raise :class:`ProtocolError`)."""
    from repro.session.config import SessionConfig
    from repro.sweep.plan import Scenario, SweepPlan

    try:
        scenarios = tuple(
            Scenario(
                name=entry["name"],
                config=SessionConfig.from_dict(entry["config"]),
                model=entry.get("model"),
                kind=entry.get("kind", "run"),
                layer=entry.get("layer"),
                profile=entry.get("profile"),
                overrides=tuple(
                    (key, value)
                    for key, value in entry.get("overrides", [])
                ),
            )
            for entry in data.get("scenarios", [])
        )
        return SweepPlan(scenarios=scenarios)
    except (KeyError, TypeError, ValueError, ReproError) as exc:
        raise ProtocolError(f"malformed wire sweep plan: {exc}") from exc


def submit_message(
    plan_wire: Dict[str, Any],
    resume: Optional[Dict[str, Any]] = None,
    label: Optional[str] = None,
) -> Dict[str, Any]:
    """A ``submit_sweep`` request.  ``resume`` is an archived
    SweepReport dict — the service skips scenarios whose resolved-config
    hash matches it and folds the archived results into the job's
    report."""
    message: Dict[str, Any] = {
        "type": "submit_sweep",
        "version": PROTOCOL_VERSION,
        "plan": plan_wire,
    }
    if resume is not None:
        message["resume"] = resume
    if label is not None:
        message["label"] = label
    return message


def job_request_message(kind: str, job_id: str) -> Dict[str, Any]:
    """One of the per-job requests: ``job_status`` / ``job_result`` /
    ``job_cancel`` / ``job_watch``."""
    return {"type": kind, "id": job_id}


def job_message(job: Dict[str, Any]) -> Dict[str, Any]:
    """The service's reply describing one job's current state."""
    return {"type": "job", "job": job}


def jobs_message(jobs: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The ``job_list`` reply: every job the service knows, in
    submission order."""
    return {"type": "jobs", "jobs": jobs}


def job_result_message(
    job: Dict[str, Any], report: Dict[str, Any]
) -> Dict[str, Any]:
    """A finished job's archived report (the ``job_result`` reply)."""
    return {"type": "job_result", "job": job, "report": report}


def progress_message(job_id: str, event: Dict[str, Any]) -> Dict[str, Any]:
    """One streamed scenario-level progress event for a watched job."""
    return {"type": "progress", "id": job_id, "event": event}


def exception_from_wire(entry: Dict[str, Any]) -> Exception:
    """Rebuild a worker-side exception from its wire form.

    Known :mod:`repro.errors` classes round-trip by name so callers'
    ``isinstance`` checks (e.g. the tuner pricing ``MappingError`` as an
    invalid config) behave exactly as with local execution; anything
    else degrades to :class:`SimulationError`.
    """
    import repro.errors as errors_module

    name = entry.get("error_type", "")
    message = entry.get("error", "remote evaluation failed")
    cls = getattr(errors_module, name, None)
    if isinstance(cls, type) and issubclass(cls, ReproError):
        return cls(message)
    return SimulationError(f"remote worker error ({name}): {message}")
