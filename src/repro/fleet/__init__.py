"""repro.fleet — the distributed sweep subsystem.

Why this package exists
-----------------------
The paper's headline workload is large design-space exploration: tuning
mapping/configuration spaces over STONNE cycle models, thousands of
simulations per layer.  :mod:`repro.engine` made that loop cached and
batched; its executor backends made it parallel *within* one machine.
This package is the next tier out — the same batch of cache misses, fanned
across machines:

:mod:`repro.fleet.protocol`
    The wire format: length-prefixed JSON frames carrying an engine
    spec (config + params + controller type + fingerprint), structural
    ``(key, layer, mapping)`` items, and per-item stats/error results.
    Truncated and oversized frames raise
    :class:`~repro.fleet.protocol.ProtocolError` instead of yielding
    partial batches.

:mod:`repro.fleet.worker`
    The daemon (``repro worker --listen HOST:PORT``): a threading TCP
    server that rebuilds one controller per engine fingerprint —
    verifying the fingerprint, so fleet version skew fails loudly —
    executes batches, optionally consults/populates a local stats
    cache (the SQLite tier shares it with co-located peers), and
    streams results back.

:mod:`repro.fleet.remote_backend`
    The client: an executor backend registered as ``"remote"``.  The
    engine's ``evaluate_many`` hands it a miss batch; it shards the
    batch round-robin across configured workers, retries dead workers'
    shards on survivors, and degrades to inline serial execution when
    the fleet is unreachable.  Because it is just another backend,
    ``Tuner.tune → measure_batch → evaluate_many`` distributes a GA
    generation with zero tuner changes — and results stay bit-identical
    to serial execution (the acceptance bar).

Workers and drivers sharing one
:class:`~repro.engine.sqlite_cache.SqliteStatsCache` see each other's
discoveries *mid-sweep*: worker A's measurement is worker B's cache hit
within the same tuning run.
"""

from repro.fleet.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_frame,
    encode_frame,
)
from repro.fleet.remote_backend import RemoteBackend
from repro.fleet.worker import FleetWorker, parse_address, serve, start_worker

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "RemoteBackend",
    "FleetWorker",
    "decode_frame",
    "encode_frame",
    "parse_address",
    "serve",
    "start_worker",
]
