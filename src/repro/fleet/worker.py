"""The fleet worker daemon: a TCP service that executes simulation batches.

One worker process serves many client connections (one handler thread
per connection, the same accept model as the engine's thread backend).
Per connection the dialogue is: worker sends ``hello`` (protocol
version + the controller types it can rebuild), then loops serving
``evaluate_batch`` requests and ``ping`` heartbeats until the client
says ``bye`` or disconnects.

Controllers are rebuilt once per engine fingerprint and cached for the
daemon's lifetime — the same amortization the process backend's workers
use (:func:`repro.engine.backends._process_chunk`), lifted across
machine boundaries.  Rebuilds are *verified*: the worker recomputes the
fingerprint from the shipped (config, params, controller) and refuses
batches whose fingerprint does not match, so version skew between fleet
peers fails loudly instead of corrupting content-addressed caches.

A worker may also carry a local stats cache (typically the shared
SQLite tier, so co-located workers pool their discoveries): batch items
whose key is already cached skip the simulation entirely, and fresh
results are stored before they are shipped back.

Run it as a daemon with ``repro worker --listen HOST:PORT`` or embed it
with :func:`start_worker` (tests, benchmarks, notebooks).
"""

from __future__ import annotations

import os
import re
import signal
import socket
import socketserver
import subprocess
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.engine.backends import simulate_chunk
from repro.engine.cache import StatsCache
from repro.errors import FleetError
from repro.fleet import protocol
from repro.stonne.controller import registered_controller_types


def parse_address(text: str, default_port: int = 0) -> Tuple[str, int]:
    """Parse ``HOST:PORT`` (or bare ``HOST``) into an address tuple."""
    host, sep, port = text.rpartition(":")
    if not sep:
        return text or "127.0.0.1", default_port
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise protocol.ProtocolError(
            f"invalid worker address {text!r}; expected HOST:PORT"
        ) from None


class _FleetRequestHandler(socketserver.BaseRequestHandler):
    """One client connection: hello, then a request/response loop."""

    def setup(self) -> None:
        # Batches are latency-sensitive small frames; don't Nagle them.
        self.request.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)

    def handle(self) -> None:
        server: FleetWorker = self.server  # type: ignore[assignment]
        nonce = protocol.make_nonce() if server.secret else None
        protocol.send_message(
            self.request,
            protocol.hello_message(
                registered_controller_types(),
                os.getpid(),
                capacity=server.capacity,
                nonce=nonce,
            ),
        )
        if server.secret:
            # Challenge-response before anything else: no controller is
            # rebuilt, no cache row touched, until the digest verifies.
            try:
                answer = protocol.recv_message(self.request)
            except (protocol.ProtocolError, OSError):
                return
            if answer is None or not protocol.verify_auth(
                server.secret, nonce, answer
            ):
                try:
                    protocol.send_message(
                        self.request,
                        protocol.error_message(
                            protocol.ProtocolError(
                                "authentication failed: bad or missing "
                                "shared secret"
                            )
                        ),
                    )
                except (protocol.ProtocolError, OSError):
                    pass
                return
            protocol.send_message(self.request, {"type": "auth_ok"})
        while True:
            try:
                message = protocol.recv_message(self.request)
            except (protocol.ProtocolError, OSError):
                return  # client vanished or spoke garbage; drop the line
            if message is None or message.get("type") == "bye":
                return
            kind = message.get("type")
            if kind == "ping":
                protocol.send_message(self.request, {"type": "pong"})
            elif kind == "evaluate_batch":
                protocol.send_message(self.request, server.execute_batch(message))
            else:
                protocol.send_message(
                    self.request,
                    protocol.error_message(
                        protocol.ProtocolError(f"unknown message type {kind!r}")
                    ),
                )


class FleetWorker(socketserver.ThreadingTCPServer):
    """The daemon: a threading TCP server plus the simulation state.

    Args:
        address: ``(host, port)`` to bind; port 0 picks a free port
            (read :attr:`port` after construction).
        cache: Optional local stats cache consulted/populated around
            every simulation.  Use the SQLite tier to share it with
            co-located workers and sweep drivers.
        capacity: Advertised scheduling weight (``hello.capacity``).
            The remote backend sizes this worker's shards — and its
            pull-scheduler slot count — proportionally.  Purely a
            weight: simulation still serializes on the controller lock.
        secret: Opt-in shared secret.  When set, the hello carries an
            HMAC challenge and every connection must answer it before
            its first request; a bad or missing digest is rejected with
            an error frame and the connection dropped, with no worker
            state touched.
    """

    allow_reuse_address = True
    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int] = ("127.0.0.1", 0),
        cache: Optional[StatsCache] = None,
        capacity: int = 1,
        secret: Optional[str] = None,
    ) -> None:
        super().__init__(address, _FleetRequestHandler)
        self.cache = cache
        self.capacity = max(1, int(capacity))
        self.secret = secret or None
        self.batches_served = 0
        self.items_served = 0
        #: Rebuilt controllers keyed by engine fingerprint, with the
        #: functional flag they were shipped with.
        self._controllers: Dict[str, Tuple[object, bool]] = {}
        self._controller_lock = threading.Lock()
        #: In-flight batch bookkeeping for graceful shutdown: close()
        #: waits until every started batch has produced its response.
        self._active_batches = 0
        self._drain = threading.Condition()

    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    # ------------------------------------------------------------------
    def _controller_for(self, spec) -> Tuple[object, bool]:
        fingerprint = spec.get("fingerprint")
        with self._controller_lock:
            entry = self._controllers.get(fingerprint)
            if entry is None:
                controller, _, functional = protocol.rebuild_controller(spec)
                entry = (controller, functional)
                self._controllers[fingerprint] = entry
            return entry

    def execute_batch(self, message) -> Dict:
        """The ``results`` (or batch-fatal ``error``) for one request.

        Per-item failures are captured as error entries — one invalid
        mapping must not poison a shard, mirroring the executor-backend
        contract.  Only a spec that cannot be rebuilt fails the batch.
        """
        with self._drain:
            self._active_batches += 1
        try:
            return self._execute_batch(message)
        finally:
            with self._drain:
                self._active_batches -= 1
                self._drain.notify_all()

    def _execute_batch(self, message) -> Dict:
        started = time.perf_counter()
        try:
            controller, functional = self._controller_for(message.get("spec", {}))
        except protocol.ProtocolError as exc:
            return protocol.error_message(exc)
        items = message.get("items", [])
        entries: List[Optional[Dict]] = [None] * len(items)
        cache_hits = 0
        #: Cache misses: (slot, pos, key, layer, mapping) awaiting one
        #: grouped simulate_chunk pass.
        pending = []
        for slot, item in enumerate(items):
            pos = item.get("pos")
            try:
                layer = protocol.layer_from_wire(item["layer"])
                mapping = protocol.mapping_from_wire(item.get("mapping"))
                key = protocol.key_from_wire(item.get("key"))
                stats = self.cache.get(key) if (
                    self.cache is not None and key is not None
                ) else None
                if stats is None:
                    pending.append((slot, pos, key, layer, mapping))
                else:
                    stats.layer_name = layer.name
                    entries[slot] = {"pos": pos, "stats": stats.to_dict()}
                    cache_hits += 1
            except Exception as exc:
                entries[slot] = {
                    "pos": pos,
                    "error": str(exc),
                    "error_type": type(exc).__name__,
                }
        if pending:
            pairs = [(layer, mapping) for _, _, _, layer, mapping in pending]
            # One controller per fingerprint, many handler threads:
            # cycle-model tallies must not race.  The whole chunk runs
            # under the lock, grouped so repeated layers share one batch
            # kernel call (same path as the engine backends).
            with self._controller_lock:
                payloads = simulate_chunk(controller, pairs, functional)
            for (slot, pos, key, _, _), payload in zip(pending, payloads):
                if isinstance(payload, Exception):
                    entries[slot] = {
                        "pos": pos,
                        "error": str(payload),
                        "error_type": type(payload).__name__,
                    }
                else:
                    if self.cache is not None and key is not None:
                        self.cache.put(key, payload)
                    entries[slot] = {"pos": pos, "stats": payload.to_dict()}
        self.batches_served += 1
        self.items_served += len(entries)
        timing = {
            "pid": os.getpid(),
            "duration_s": time.perf_counter() - started,
            "cache_hits": cache_hits,
            "simulated": len(pending),
            "items": len(entries),
        }
        return protocol.results_message(entries, timing=timing)

    def close(self, drain_timeout: float = 30.0) -> None:
        """Stop serving, drain in-flight batches, release the socket.

        Idempotent.  New connections stop being accepted immediately;
        batches already executing get up to ``drain_timeout`` seconds to
        finish and ship their responses, so a SIGTERM'd worker does not
        strand a shard mid-simulation and force the client's retry path.
        """
        self.shutdown()
        with self._drain:
            deadline = time.monotonic() + drain_timeout
            while self._active_batches:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._drain.wait(remaining)
        self.server_close()


def start_worker(
    host: str = "127.0.0.1",
    port: int = 0,
    cache: Optional[StatsCache] = None,
    capacity: int = 1,
) -> Tuple[FleetWorker, threading.Thread]:
    """Start a worker serving in a daemon thread; returns (worker, thread).

    The embeddable form used by tests and benchmarks: bind (port 0 for
    an ephemeral port), serve until :meth:`FleetWorker.close`.
    """
    worker = FleetWorker((host, port), cache=cache, capacity=capacity)
    thread = threading.Thread(
        target=worker.serve_forever,
        name=f"fleet-worker-{worker.port}",
        daemon=True,
    )
    thread.start()
    return worker, thread


class LocalWorkerProcess:
    """A worker daemon subprocess owned by the spawner (e.g. a Session).

    Wraps the ``repro worker`` subprocess plus the address it bound —
    parsed from its startup banner, which is why autostarted workers are
    never ``--quiet``.  :meth:`stop` is the reap: terminate, wait, and
    escalate to kill if the daemon ignores the signal, so the spawner
    can guarantee no lingering processes after ``close()``.
    """

    def __init__(self, process, address: str) -> None:
        self.process = process
        self.address = address

    @property
    def pid(self) -> int:
        return self.process.pid

    @property
    def running(self) -> bool:
        return self.process.poll() is None

    def stop(self, timeout: float = 5.0) -> None:
        """Terminate and reap the daemon (idempotent)."""
        if self.process.poll() is None:
            self.process.terminate()
            try:
                self.process.wait(timeout=timeout)
            except Exception:  # subprocess.TimeoutExpired
                self.process.kill()
                self.process.wait()
        if self.process.stdout is not None:
            self.process.stdout.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "running" if self.running else "stopped"
        return f"LocalWorkerProcess(pid={self.pid}, {self.address}, {state})"


_BANNER_ADDRESS = re.compile(r"listening on (\S+)")


def spawn_local_worker(
    cache_path: Optional[str] = None,
    cache_max_rows: Optional[int] = None,
    timeout: float = 30.0,
    capacity: Optional[int] = None,
    secret: Optional[str] = None,
) -> LocalWorkerProcess:
    """Start one ``repro worker`` daemon subprocess on a free port.

    The daemon binds port 0 and reports the chosen address in its
    startup banner, which this function blocks on (bounded by
    ``timeout`` — a child wedged before its banner, e.g. on a hung
    cache mount, is killed rather than hanging the session open) —
    when it returns, the worker is accepting connections.  The child
    inherits this interpreter and has the repro package's root
    prepended to its ``PYTHONPATH``, so source checkouts work without
    installation.
    """
    import repro

    argv = [
        sys.executable, "-m", "repro.cli", "worker",
        "--listen", "127.0.0.1:0",
    ]
    if cache_path:
        argv += ["--cache-path", cache_path]
    if cache_max_rows:
        argv += ["--cache-max-rows", str(cache_max_rows)]
    if capacity is not None and capacity > 1:
        argv += ["--fleet-capacity", str(capacity)]
    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = package_root + os.pathsep + env.get("PYTHONPATH", "")
    if secret:
        # Via the environment, not argv: the config layer picks it up as
        # REPRO_FLEET_SECRET and it never shows in the process listing.
        env["REPRO_FLEET_SECRET"] = secret
    process = subprocess.Popen(
        argv,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    # readline on a pipe has no timeout of its own; do it on a daemon
    # thread so a pre-banner hang can be bounded and the child killed.
    first_line: List[str] = []
    reader = threading.Thread(
        target=lambda: first_line.append(process.stdout.readline() or ""),
        daemon=True,
    )
    reader.start()
    reader.join(timeout)
    banner = first_line[0] if first_line else ""
    match = _BANNER_ADDRESS.search(banner)
    if match is None:
        if process.poll() is None:
            process.terminate()
            try:
                process.wait(timeout=5)
            except Exception:  # subprocess.TimeoutExpired
                process.kill()
                process.wait()
        detail = (
            f"output was: {banner.strip()!r}" if first_line
            else f"no banner within {timeout:g}s"
        )
        raise FleetError(
            f"autostarted worker failed to report its address; {detail}"
        )
    return LocalWorkerProcess(process, match.group(1))


def spawn_local_workers(
    count: int,
    cache_path: Optional[str] = None,
    cache_max_rows: Optional[int] = None,
    capacity: Optional[int] = None,
    secret: Optional[str] = None,
) -> List[LocalWorkerProcess]:
    """Spawn ``count`` local daemons, reaping the survivors on failure."""
    workers: List[LocalWorkerProcess] = []
    try:
        for _ in range(count):
            workers.append(
                spawn_local_worker(
                    cache_path=cache_path,
                    cache_max_rows=cache_max_rows,
                    capacity=capacity,
                    secret=secret,
                )
            )
    except Exception:
        for worker in workers:
            worker.stop()
        raise
    return workers


def install_shutdown_signals(server) -> "threading.Event":
    """Point SIGTERM/SIGINT at a graceful ``server.shutdown()``.

    Returns the event set when a signal arrived.  ``shutdown()`` blocks
    until ``serve_forever`` exits — and ``serve_forever`` runs on the
    very main thread the handler interrupts — so the handler hands the
    call to a helper thread instead of deadlocking on itself.  No-op
    (returns an unset event) off the main thread, where ``signal.signal``
    is unavailable; embedded servers are closed explicitly instead.
    """
    stop = threading.Event()

    def _request_stop(signum, frame):  # pragma: no cover - signal path
        if not stop.is_set():
            stop.set()
            threading.Thread(target=server.shutdown, daemon=True).start()

    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            signal.signal(signum, _request_stop)
        except ValueError:
            break  # not the main thread
    return stop


def serve(
    listen: str,
    cache_path: Optional[str] = None,
    quiet: bool = False,
    cache_max_rows: Optional[int] = None,
    capacity: int = 1,
    secret: Optional[str] = None,
) -> int:
    """Blocking daemon entry point behind ``repro worker``.

    Serves until interrupted; returns a process exit code.  The cache
    settings come from the same :class:`~repro.session.SessionConfig`
    cache section the sweep drivers use (``repro worker --config``), so
    a fleet member and its drivers cannot disagree about the shared
    tier's path or its LRU row cap.

    SIGTERM and SIGINT shut down gracefully: the listener stops
    accepting, in-flight batches drain and ship their responses, cache
    tiers close, and the process exits 0.
    """
    from repro.engine.cache import make_stats_cache

    host, port = parse_address(listen, default_port=9461)
    cache = (
        make_stats_cache(cache_path, max_rows=cache_max_rows)
        if cache_path
        else None
    )
    worker = FleetWorker(
        (host, port), cache=cache, capacity=capacity, secret=secret
    )
    if not quiet:
        print(
            f"fleet worker pid {os.getpid()} listening on {worker.address} "
            f"(controllers: {', '.join(registered_controller_types())}; "
            f"cache: {cache_path or 'none'}; capacity: {worker.capacity}; "
            f"auth: {'on' if worker.secret else 'off'})",
            flush=True,
        )
    install_shutdown_signals(worker)
    try:
        worker.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        worker.close()
        if cache is not None and hasattr(cache, "close"):
            cache.close()
    if not quiet:
        print("fleet worker stopped", flush=True)
    return 0
