"""Layer descriptors: the workload side of a simulation.

The convolution parameters follow the Nvidia taxonomy used by the paper
(Table II): ``N`` batch, ``C`` input channels, ``H``/``W`` input rows/cols,
``K`` output channels, ``R``/``S`` filter rows/cols, ``G`` groups,
``P``/``Q`` output rows/cols, plus padding and strides.  STONNE itself
only executes ``N == 1``; batch-N descriptors are accepted here and
modelled by the controllers as N sequential single-batch simulations
(see :meth:`repro.stonne.stats.SimulationStats.repeated`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import LayerError


def _check_positive(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value <= 0:
        raise LayerError(f"{name} must be a positive integer, got {value!r}")


def _check_non_negative(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 0:
        raise LayerError(f"{name} must be a non-negative integer, got {value!r}")


@dataclass(frozen=True)
class ConvLayer:
    """A 2D convolution workload (Table II of the paper).

    Output dimensions ``P`` and ``Q`` are derived, not stored:  use the
    :attr:`P` and :attr:`Q` properties.
    """

    name: str
    C: int
    H: int
    W: int
    K: int
    R: int
    S: int
    stride_h: int = 1
    stride_w: int = 1
    pad_h: int = 0
    pad_w: int = 0
    G: int = 1
    N: int = 1
    dil_h: int = 1
    dil_w: int = 1
    layout: str = "NCHW"

    def __post_init__(self) -> None:
        for attr in (
            "C", "H", "W", "K", "R", "S",
            "stride_h", "stride_w", "G", "N", "dil_h", "dil_w",
        ):
            _check_positive(attr, getattr(self, attr))
        for attr in ("pad_h", "pad_w"):
            _check_non_negative(attr, getattr(self, attr))
        if self.layout not in ("NCHW", "NHWC"):
            raise LayerError(
                f"layout must be 'NCHW' or 'NHWC', got {self.layout!r} "
                f"for layer {self.name!r}"
            )
        if self.C % self.G or self.K % self.G:
            raise LayerError(
                f"groups G={self.G} must divide C={self.C} and K={self.K} "
                f"for layer {self.name!r}"
            )
        if (
            self.eff_R > self.H + 2 * self.pad_h
            or self.eff_S > self.W + 2 * self.pad_w
        ):
            raise LayerError(
                f"dilated filter ({self.eff_R}x{self.eff_S}) larger than "
                f"padded input "
                f"({self.H + 2 * self.pad_h}x{self.W + 2 * self.pad_w}) "
                f"for layer {self.name!r}"
            )

    @property
    def eff_R(self) -> int:
        """Effective (dilated) filter rows: ``(R-1)*dil_h + 1``."""
        return (self.R - 1) * self.dil_h + 1

    @property
    def eff_S(self) -> int:
        """Effective (dilated) filter columns: ``(S-1)*dil_w + 1``."""
        return (self.S - 1) * self.dil_w + 1

    @property
    def P(self) -> int:
        """Number of output rows."""
        return (self.H + 2 * self.pad_h - self.eff_R) // self.stride_h + 1

    @property
    def Q(self) -> int:
        """Number of output columns."""
        return (self.W + 2 * self.pad_w - self.eff_S) // self.stride_w + 1

    @property
    def macs(self) -> int:
        """Total multiply-accumulate operations for the layer."""
        return self.N * self.K * self.P * self.Q * self.R * self.S * (self.C // self.G)

    @property
    def output_elements(self) -> int:
        return self.N * self.K * self.P * self.Q

    @property
    def input_elements(self) -> int:
        return self.N * self.C * self.H * self.W

    @property
    def weight_elements(self) -> int:
        return self.K * (self.C // self.G) * self.R * self.S

    def as_gemm(self) -> "GemmLayer":
        """Lower the convolution to the GEMM an im2col transform produces.

        ``M = K`` (one output row per filter), ``K_dim = C·R·S / G`` (the
        reduction), ``N_dim = P·Q`` (one column per output pixel).  This is
        how SIGMA and the TPU execute convolutions (§V-B2 and §V-B3).
        """
        return GemmLayer(
            name=f"{self.name}.im2col",
            M=self.K,
            K=(self.C // self.G) * self.R * self.S,
            N=self.P * self.Q,
        )

    def describe(self) -> str:
        """Human-readable one-liner used by reports."""
        extras = ""
        if self.dil_h != 1 or self.dil_w != 1:
            extras += f" dil=({self.dil_h},{self.dil_w})"
        if self.G != 1:
            extras += f" G={self.G}"
        if self.layout != "NCHW":
            extras += f" layout={self.layout}"
        return (
            f"{self.name}: conv2d C={self.C} H={self.H} W={self.W} K={self.K} "
            f"R={self.R} S={self.S} stride=({self.stride_h},{self.stride_w}) "
            f"pad=({self.pad_h},{self.pad_w}){extras} -> P={self.P} Q={self.Q} "
            f"({self.macs:,} MACs)"
        )


@dataclass(frozen=True)
class FcLayer:
    """A fully connected (dense) workload.

    ``in_features`` is the reduction dimension (the paper's ``T_K`` tiles
    it), ``out_features`` the number of output neurons (``T_S``), and
    ``batch`` the number of input rows (``T_N``; STONNE executes one at a
    time, so batch-N runs as ``batch`` sequential simulations).
    """

    name: str
    in_features: int
    out_features: int
    batch: int = 1

    def __post_init__(self) -> None:
        _check_positive("in_features", self.in_features)
        _check_positive("out_features", self.out_features)
        _check_positive("batch", self.batch)

    @property
    def macs(self) -> int:
        return self.batch * self.in_features * self.out_features

    @property
    def output_elements(self) -> int:
        return self.batch * self.out_features

    def as_gemm(self) -> "GemmLayer":
        """The dense operator is a GEMM: (batch x in) @ (in x out)."""
        return GemmLayer(
            name=f"{self.name}.gemm",
            M=self.out_features,
            K=self.in_features,
            N=self.batch,
        )

    def describe(self) -> str:
        return (
            f"{self.name}: dense in={self.in_features} out={self.out_features} "
            f"batch={self.batch} ({self.macs:,} MACs)"
        )


@dataclass(frozen=True)
class GemmLayer:
    """A general matrix multiplication ``(M x K) @ (K x N)``.

    This is the native workload of SIGMA and the lowered form of both
    convolutions (via im2col) and dense layers.
    """

    name: str
    M: int
    K: int
    N: int

    def __post_init__(self) -> None:
        _check_positive("M", self.M)
        _check_positive("K", self.K)
        _check_positive("N", self.N)

    @property
    def macs(self) -> int:
        return self.M * self.K * self.N

    @property
    def output_elements(self) -> int:
        return self.M * self.N

    def describe(self) -> str:
        return f"{self.name}: gemm M={self.M} K={self.K} N={self.N} ({self.macs:,} MACs)"


def ceil_div(a: int, b: int) -> int:
    """Integer ceiling division; the basic quantity of tiled execution."""
    if b <= 0:
        raise LayerError(f"ceil_div divisor must be positive, got {b}")
    return -(-a // b)


def is_power_of_two(x: int) -> bool:
    """True when ``x`` is a positive power of two (Table III's constraint)."""
    return isinstance(x, int) and not isinstance(x, bool) and x > 0 and (x & (x - 1)) == 0


def next_power_of_two(x: int) -> int:
    """Smallest power of two >= ``x`` (used to round bandwidths up)."""
    if x <= 1:
        return 1
    return 1 << math.ceil(math.log2(x))
