"""Multiplier network models.

Two topologies from STONNE (Table III):

* :class:`LinearMultiplierNetwork` (``LINEAR``) — MAERI/SIGMA's 1-D chain
  of multiplier switches.  The array is *partitioned* into virtual neurons
  by the mapping; every occupied multiplier retires one MAC per cycle.
* :class:`OSMeshNetwork` (``OS_MESH``) — the TPU's 2-D output-stationary
  mesh of ``rows x cols`` PEs executing the classic systolic schedule.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MappingError, SimulationError


@dataclass(frozen=True)
class LinearMultiplierNetwork:
    """A linear array of ``size`` multiplier switches."""

    size: int

    def __post_init__(self) -> None:
        if self.size < 1:
            raise SimulationError(f"multiplier array size must be >= 1, got {self.size}")

    def check_fit(self, vn_size: int, num_vns: int) -> None:
        """Raise unless ``num_vns`` VNs of ``vn_size`` fit in the array."""
        needed = vn_size * num_vns
        if needed > self.size:
            raise MappingError(
                f"mapping needs {needed} multipliers "
                f"({num_vns} VNs x {vn_size}) but the array has {self.size}"
            )

    def compute_cycles(self, macs_per_iteration: int, multipliers_used: int) -> int:
        """Cycles the array needs to retire one iteration's MACs.

        With every occupied multiplier doing one MAC per cycle, an
        iteration that issues exactly one MAC per occupied PE takes a
        single cycle; oversubscribed iterations (more MACs than PEs, which
        SIGMA's auto-tiling can produce) serialize.
        """
        if multipliers_used < 1:
            raise SimulationError("an iteration must occupy at least one multiplier")
        if macs_per_iteration < 0:
            raise SimulationError("negative MAC count")
        if macs_per_iteration == 0:
            return 0
        return -(-macs_per_iteration // multipliers_used)


@dataclass(frozen=True)
class OSMeshNetwork:
    """An output-stationary ``rows x cols`` systolic mesh (the TPU)."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise SimulationError(
                f"mesh dimensions must be >= 1, got {self.rows}x{self.cols}"
            )

    @property
    def size(self) -> int:
        return self.rows * self.cols

    def tile_cycles(self, reduction_length: int, fill_drain_factor: int = 1) -> int:
        """Cycles for one output tile of ``rows x cols`` results.

        The classic systolic formula: operands skew in across the mesh
        diagonals (fill), ``reduction_length`` MACs stream through every
        PE, then results drain.  Fill + drain together cost
        ``(rows + cols - 2) * fill_drain_factor`` extra cycles.
        """
        if reduction_length < 1:
            raise SimulationError(
                f"reduction length must be >= 1, got {reduction_length}"
            )
        fill_drain = (self.rows + self.cols - 2) * fill_drain_factor
        return reduction_length + fill_drain + 1
