"""Sparsity utilities: magnitude pruning and bitmap compression.

SIGMA consumes weight tensors in a bitmap-compressed format; Bifrost's
evaluation prunes AlexNet to fixed sparsity ratios (Figure 9).  These
helpers produce deterministically pruned tensors and the bitmap encoding
the memory controller would stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import SimulationError


def prune_to_sparsity(weights: np.ndarray, sparsity_ratio: int) -> np.ndarray:
    """Magnitude-prune ``weights`` so ``sparsity_ratio`` percent are zero.

    The smallest-magnitude elements are zeroed, matching the standard
    pruning recipe the paper's Figure 9 assumes.  The input is not
    modified.  ``sparsity_ratio`` is an integer percentage in [0, 100].
    """
    if not 0 <= sparsity_ratio <= 100:
        raise SimulationError(
            f"sparsity_ratio must be in [0, 100], got {sparsity_ratio}"
        )
    pruned = np.array(weights, dtype=np.float64, copy=True)
    if sparsity_ratio == 0:
        return pruned
    flat = pruned.reshape(-1)
    n_zero = int(round(flat.size * sparsity_ratio / 100.0))
    if n_zero >= flat.size:
        return np.zeros_like(pruned)
    if n_zero == 0:
        return pruned
    order = np.argsort(np.abs(flat), kind="stable")
    flat[order[:n_zero]] = 0.0
    return pruned


def measured_sparsity(weights: np.ndarray) -> float:
    """Fraction of exactly-zero elements in ``weights``."""
    if weights.size == 0:
        raise SimulationError("cannot measure sparsity of an empty tensor")
    return float(np.count_nonzero(weights == 0.0)) / weights.size


@dataclass(frozen=True)
class BitmapTensor:
    """Bitmap-compressed sparse tensor (SIGMA's on-wire format).

    ``bitmap`` marks non-zero positions; ``values`` holds the non-zeros in
    row-major order.  Decompression is exact.
    """

    shape: Tuple[int, ...]
    bitmap: np.ndarray
    values: np.ndarray

    @classmethod
    def compress(cls, dense: np.ndarray) -> "BitmapTensor":
        mask = dense != 0.0
        return cls(
            shape=tuple(dense.shape),
            bitmap=mask.reshape(-1).copy(),
            values=dense.reshape(-1)[mask.reshape(-1)].copy(),
        )

    def decompress(self) -> np.ndarray:
        dense = np.zeros(int(np.prod(self.shape)), dtype=self.values.dtype)
        dense[self.bitmap] = self.values
        return dense.reshape(self.shape)

    @property
    def nnz(self) -> int:
        return int(self.values.size)

    @property
    def density(self) -> float:
        total = int(np.prod(self.shape))
        return self.nnz / total if total else 0.0

    @property
    def compressed_elements(self) -> int:
        """Storage in value-slots: non-zeros plus the bitmap (1/32 each)."""
        total_bits = int(np.prod(self.shape))
        return self.nnz + -(-total_bits // 32)
