"""The STONNE facade: one entry point over the three controllers.

:class:`Stonne` mirrors how Bifrost drives STONNE (§V): create an
instance per layer execution, configure it with an architecture and a
mapping, load the layer, run, and read back outputs and statistics.

The functional datapath is mapping-invariant — a mapping changes *when*
each MAC happens, never its value — so outputs are produced by an exact
im2col GEMM while the cycle/psum accounting follows the mapping.  The test
suite verifies functional outputs against the :mod:`repro.topi` reference
implementations for every architecture, which is the correctness check
Bifrost performs through TVM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

import numpy as np

from repro.errors import ConfigError, SimulationError, UnsupportedLayerError
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.magma import MagmaController
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.maeri import MaeriController
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.sigma import SigmaController
from repro.stonne.stats import SimulationStats
from repro.stonne.tpu import TpuController


@dataclass
class SimulationResult:
    """Output tensor plus the statistics of the simulated execution."""

    output: Optional[np.ndarray]
    stats: SimulationStats


def _im2col(data: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """Lower an NCHW input tensor to the (C*R*S) x (P*Q) im2col matrix."""
    n, c, h, w = data.shape
    if (n, c, h, w) != (layer.N, layer.C, layer.H, layer.W):
        raise SimulationError(
            f"input shape {data.shape} does not match layer "
            f"({layer.N},{layer.C},{layer.H},{layer.W})"
        )
    padded = np.pad(
        data,
        ((0, 0), (0, 0), (layer.pad_h, layer.pad_h), (layer.pad_w, layer.pad_w)),
        mode="constant",
    )
    p, q = layer.P, layer.Q
    cols = np.empty((c * layer.R * layer.S, p * q), dtype=padded.dtype)
    idx = 0
    for ch in range(c):
        for r in range(layer.R):
            for s in range(layer.S):
                patch = padded[
                    0,
                    ch,
                    r : r + p * layer.stride_h : layer.stride_h,
                    s : s + q * layer.stride_w : layer.stride_w,
                ]
                cols[idx] = patch.reshape(-1)
                idx += 1
    return cols


def _conv_via_gemm(
    data: np.ndarray, weights: np.ndarray, layer: ConvLayer
) -> np.ndarray:
    """Exact NCHW convolution through the im2col GEMM primitive.

    ``weights`` is KCRS.  Grouped convolutions slice channel blocks and
    run one GEMM per group, the same decomposition STONNE uses.
    """
    k, c_per_g, r, s = weights.shape
    if (k, c_per_g, r, s) != (layer.K, layer.C // layer.G, layer.R, layer.S):
        raise SimulationError(
            f"weight shape {weights.shape} does not match layer "
            f"({layer.K},{layer.C // layer.G},{layer.R},{layer.S})"
        )
    p, q = layer.P, layer.Q
    out = np.empty((1, layer.K, p, q), dtype=np.result_type(data, weights))
    k_per_g = layer.K // layer.G
    for g in range(layer.G):
        sub_layer = ConvLayer(
            name=layer.name,
            C=c_per_g,
            H=layer.H,
            W=layer.W,
            K=k_per_g,
            R=r,
            S=s,
            stride_h=layer.stride_h,
            stride_w=layer.stride_w,
            pad_h=layer.pad_h,
            pad_w=layer.pad_w,
        )
        cols = _im2col(
            data[:, g * c_per_g : (g + 1) * c_per_g], sub_layer
        )
        w_mat = weights[g * k_per_g : (g + 1) * k_per_g].reshape(k_per_g, -1)
        out[0, g * k_per_g : (g + 1) * k_per_g] = (w_mat @ cols).reshape(k_per_g, p, q)
    return out


class Stonne:
    """A configured simulator instance (one per layer execution, like STONNE).

    Args:
        config: Validated hardware configuration.
        params: Cycle-model calibration constants (tests/ablations only).
    """

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        self.config = config
        self.params = params
        self._maeri: Optional[MaeriController] = None
        self._sigma: Optional[SigmaController] = None
        self._tpu: Optional[TpuController] = None
        self._magma: Optional[MagmaController] = None
        if config.controller_type is ControllerType.MAERI_DENSE_WORKLOAD:
            self._maeri = MaeriController(config, params)
        elif config.controller_type is ControllerType.SIGMA_SPARSE_GEMM:
            self._sigma = SigmaController(config, params)
        elif config.controller_type is ControllerType.MAGMA_SPARSE_DENSE:
            self._magma = MagmaController(config, params)
        else:
            self._tpu = TpuController(config, params)

    # ------------------------------------------------------------------
    def run_conv2d(
        self,
        layer: ConvLayer,
        mapping: Optional[ConvMapping] = None,
        data: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Simulate a conv2d layer; optionally compute its output.

        MAERI requires a ``mapping`` (falling back to the basic all-ones
        mapping, like Bifrost's default); SIGMA and the TPU ignore it —
        their dataflow is fixed or controller-generated.
        """
        if self._maeri is not None:
            stats = self._maeri.run_conv(layer, mapping or ConvMapping.basic())
        elif self._sigma is not None:
            stats = self._sigma.run_conv(layer)
        elif self._magma is not None:
            stats = self._magma.run_conv(layer)
        else:
            assert self._tpu is not None
            stats = self._tpu.run_conv(layer)

        output = None
        if data is not None:
            if weights is None:
                raise SimulationError("conv2d needs weights when data is given")
            output = _conv_via_gemm(
                np.asarray(data, dtype=np.float64),
                np.asarray(weights, dtype=np.float64),
                layer,
            )
        return SimulationResult(output=output, stats=stats)

    def run_dense(
        self,
        layer: FcLayer,
        mapping: Optional[FcMapping] = None,
        data: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Simulate a dense layer; optionally compute its output.

        ``data`` is (batch, in_features); ``weights`` is
        (out_features, in_features), PyTorch's ``nn.Linear`` convention.
        """
        if self._maeri is not None:
            stats = self._maeri.run_fc(layer, mapping or FcMapping.basic())
        elif self._sigma is not None:
            stats = self._sigma.run_fc(layer)
        elif self._magma is not None:
            stats = self._magma.run_fc(layer)
        else:
            assert self._tpu is not None
            stats = self._tpu.run_fc(layer)

        output = None
        if data is not None:
            if weights is None:
                raise SimulationError("dense needs weights when data is given")
            data = np.asarray(data, dtype=np.float64)
            weights = np.asarray(weights, dtype=np.float64)
            if data.shape != (layer.batch, layer.in_features):
                raise SimulationError(
                    f"dense input shape {data.shape} does not match layer "
                    f"({layer.batch},{layer.in_features})"
                )
            if weights.shape != (layer.out_features, layer.in_features):
                raise SimulationError(
                    f"dense weight shape {weights.shape} does not match layer "
                    f"({layer.out_features},{layer.in_features})"
                )
            output = data @ weights.T
        return SimulationResult(output=output, stats=stats)

    def run_gemm(self, gemm: GemmLayer) -> SimulationResult:
        """Simulate a raw GEMM (SIGMA, MAGMA and TPU only)."""
        if self._sigma is not None:
            return SimulationResult(output=None, stats=self._sigma.run_gemm(gemm))
        if self._magma is not None:
            return SimulationResult(output=None, stats=self._magma.run_gemm(gemm))
        if self._tpu is not None:
            return SimulationResult(output=None, stats=self._tpu.run_gemm(gemm))
        raise UnsupportedLayerError(
            "raw GEMM workloads require SIGMA, MAGMA or TPU; "
            "MAERI runs conv2d/dense"
        )
