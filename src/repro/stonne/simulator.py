"""The STONNE facade: one entry point over the registered controllers.

:class:`Stonne` mirrors how Bifrost drives STONNE (§V): create an
instance per layer execution, configure it with an architecture and a
mapping, load the layer, run, and read back outputs and statistics.  The
architecture-specific cycle model is resolved through the controller
registry (:mod:`repro.stonne.controller`), so the facade contains no
per-architecture branching.

The functional datapath is mapping-invariant — a mapping changes *when*
each MAC happens, never its value — so outputs are produced by an exact
im2col GEMM while the cycle/psum accounting follows the mapping.  The test
suite verifies functional outputs against the :mod:`repro.topi` reference
implementations for every architecture, which is the correctness check
Bifrost performs through TVM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import SimulationError, UnsupportedLayerError
from repro.stonne.config import SimulatorConfig
from repro.stonne.controller import AcceleratorController, make_controller
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.stats import SimulationStats
from repro.topi.conv2d import im2col_nchw


@dataclass
class SimulationResult:
    """Output tensor plus the statistics of the simulated execution."""

    output: Optional[np.ndarray]
    stats: SimulationStats


def _im2col(data: np.ndarray, layer: ConvLayer) -> np.ndarray:
    """Lower an NCHW input batch to its (N, C*R*S, P*Q) im2col matrices.

    Shape validation against the layer descriptor, then the canonical
    (vectorized) :func:`repro.topi.conv2d.im2col_nchw` unfold.
    """
    n, c, h, w = data.shape
    if (c, h, w) != (layer.C, layer.H, layer.W):
        raise SimulationError(
            f"input shape {data.shape} does not match layer "
            f"(N,{layer.C},{layer.H},{layer.W})"
        )
    return im2col_nchw(
        data,
        (layer.R, layer.S),
        strides=(layer.stride_h, layer.stride_w),
        padding=(layer.pad_h, layer.pad_w),
        dilation=(layer.dil_h, layer.dil_w),
    )


def _conv_via_gemm(
    data: np.ndarray, weights: np.ndarray, layer: ConvLayer
) -> np.ndarray:
    """Exact NCHW convolution through the im2col GEMM primitive.

    ``weights`` is KCRS.  Grouped convolutions slice channel blocks and
    run one GEMM per group, the same decomposition STONNE uses.  Every
    batch element is computed (the GEMM broadcasts over the batch axis),
    even though the simulated architectures only accept ``N == 1``.
    """
    k, c_per_g, r, s = weights.shape
    if (k, c_per_g, r, s) != (layer.K, layer.C // layer.G, layer.R, layer.S):
        raise SimulationError(
            f"weight shape {weights.shape} does not match layer "
            f"({layer.K},{layer.C // layer.G},{layer.R},{layer.S})"
        )
    n = data.shape[0]
    p, q = layer.P, layer.Q
    out = np.empty((n, layer.K, p, q), dtype=np.result_type(data, weights))
    k_per_g = layer.K // layer.G
    for g in range(layer.G):
        sub_layer = ConvLayer(
            name=layer.name,
            C=c_per_g,
            H=layer.H,
            W=layer.W,
            K=k_per_g,
            R=r,
            S=s,
            stride_h=layer.stride_h,
            stride_w=layer.stride_w,
            pad_h=layer.pad_h,
            pad_w=layer.pad_w,
            dil_h=layer.dil_h,
            dil_w=layer.dil_w,
        )
        cols = _im2col(
            data[:, g * c_per_g : (g + 1) * c_per_g], sub_layer
        )
        w_mat = weights[g * k_per_g : (g + 1) * k_per_g].reshape(k_per_g, -1)
        out[:, g * k_per_g : (g + 1) * k_per_g] = (w_mat @ cols).reshape(
            n, k_per_g, p, q
        )
    return out


class Stonne:
    """A configured simulator instance (one per layer execution, like STONNE).

    Args:
        config: Validated hardware configuration; its ``controller_type``
            is resolved through the controller registry.
        params: Cycle-model calibration constants (tests/ablations only).
    """

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        self.config = config
        self.params = params
        self.controller: AcceleratorController = make_controller(config, params)

    # ------------------------------------------------------------------
    def run_conv2d(
        self,
        layer: ConvLayer,
        mapping: Optional[ConvMapping] = None,
        data: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Simulate a conv2d layer; optionally compute its output.

        Architectures that consume a ``mapping`` (MAERI) fall back to the
        basic all-ones mapping, like Bifrost's default; the rest ignore
        it — their dataflow is fixed or controller-generated.
        """
        stats = self.controller.run_conv(layer, mapping)

        output = None
        if data is not None:
            if weights is None:
                raise SimulationError("conv2d needs weights when data is given")
            data = np.asarray(data, dtype=np.float64)
            if data.ndim != 4 or data.shape[0] != layer.N:
                raise UnsupportedLayerError(
                    f"conv2d input batch {data.shape} does not match the "
                    f"simulated layer's N={layer.N}; STONNE runs one batch "
                    "element per simulation — split the batch first"
                )
            output = _conv_via_gemm(
                data,
                np.asarray(weights, dtype=np.float64),
                layer,
            )
        return SimulationResult(output=output, stats=stats)

    def run_dense(
        self,
        layer: FcLayer,
        mapping: Optional[FcMapping] = None,
        data: Optional[np.ndarray] = None,
        weights: Optional[np.ndarray] = None,
    ) -> SimulationResult:
        """Simulate a dense layer; optionally compute its output.

        ``data`` is (batch, in_features); ``weights`` is
        (out_features, in_features), PyTorch's ``nn.Linear`` convention.
        """
        stats = self.controller.run_fc(layer, mapping)

        output = None
        if data is not None:
            if weights is None:
                raise SimulationError("dense needs weights when data is given")
            data = np.asarray(data, dtype=np.float64)
            weights = np.asarray(weights, dtype=np.float64)
            if data.shape != (layer.batch, layer.in_features):
                raise SimulationError(
                    f"dense input shape {data.shape} does not match layer "
                    f"({layer.batch},{layer.in_features})"
                )
            if weights.shape != (layer.out_features, layer.in_features):
                raise SimulationError(
                    f"dense weight shape {weights.shape} does not match layer "
                    f"({layer.out_features},{layer.in_features})"
                )
            output = data @ weights.T
        return SimulationResult(output=output, stats=stats)

    def run_gemm(self, gemm: GemmLayer) -> SimulationResult:
        """Simulate a raw GEMM (architectures that support the workload)."""
        return SimulationResult(output=None, stats=self.controller.run_gemm(gemm))
