"""MAERI controller: cycle-level model of the reconfigurable dense fabric.

MAERI [Kwon et al., ASPLOS'18] couples a linear multiplier array to a
chubby distribution tree and an Augmented Reduction Tree (ART).  A mapping
partitions the array into *virtual neurons* (VNs): groups of multipliers
that spatially reduce one output element per tile iteration, while the
remaining dimensions fold temporally.

The model (DESIGN.md §3) computes, per tile iteration, the steady-state
initiation interval ``II = max(dn, rn, compute, raw_stall)`` where

* ``dn`` — cycles to inject the iteration's *unique* operands into the
  distribution tree (weights multicast across ``T_X/T_Y`` VNs and inputs
  multicast across ``T_K`` count once);
* ``rn`` — cycles to drain the iteration's outputs, with partial outputs
  paying the accumulation-buffer read-modify-write occupancy;
* ``compute`` — 1 in the common case (every occupied PE retires one MAC
  per cycle);
* ``raw_stall`` — the accumulation RAW hazard, paid whenever the iteration
  accumulates onto outputs the previous iteration wrote (temporal
  reduction folds).

Identical steady-state iterations are batched ("macro-tile batching"), so
simulating a layer is O(1) in the iteration count while remaining a
deterministic function of (layer, config, mapping) exactly like STONNE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.errors import ConfigError
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.controller import (
    AcceleratorController,
    _INT64_SAFE,
    _batch_count,
    _captured,
    _single_batch,
    register_controller,
)
from repro.stonne.distribution import DistributionNetwork
from repro.stonne.layer import ConvLayer, FcLayer, ceil_div
from repro.stonne.mapping import (
    ConvMapping,
    FcMapping,
    conv_batch_invalid,
    fc_batch_invalid,
    pack_conv_mappings,
    pack_fc_mappings,
)
from repro.stonne.memory import AccumulationBuffer
from repro.stonne.multiplier import LinearMultiplierNetwork
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.reduction import TemporalRN, make_reduction_network
from repro.stonne.stats import SimulationStats, TrafficBreakdown


@dataclass(frozen=True)
class _IterationProfile:
    """Per-iteration operand and output counts for a mapping."""

    unique_weights: int
    unique_inputs: int
    outputs: int
    macs: int


@register_controller(ControllerType.MAERI_DENSE_WORKLOAD)
class MaeriController(AcceleratorController):
    """Simulates conv2d and dense workloads on a MAERI configuration."""

    workloads = frozenset({"conv", "fc"})
    requires_mapping = True

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        if config.controller_type is not ControllerType.MAERI_DENSE_WORKLOAD:
            raise ConfigError(
                f"MaeriController requires a MAERI config, got "
                f"{config.controller_type.value}"
            )
        self.config = config
        self.params = params
        self.multipliers = LinearMultiplierNetwork(size=config.ms_size)
        self.distribution = DistributionNetwork(
            bandwidth=config.dn_bw, fanout=config.ms_size
        )
        self.reduction = make_reduction_network(
            config.reduce_network_type.value,
            bandwidth=config.rn_bw,
            rmw_occupancy=params.rmw_occupancy,
        )
        self.accumulator = AccumulationBuffer(
            enabled=config.accumulation_buffer,
            raw_latency=params.acc_raw_latency,
        )

    # ------------------------------------------------------------------
    # workload-specific iteration profiles
    # ------------------------------------------------------------------
    @staticmethod
    def _conv_profile(layer: ConvLayer, mapping: ConvMapping) -> _IterationProfile:
        """Unique operand counts for one conv tile iteration.

        Weights are shared (multicast) across the ``T_X * T_Y`` output-pixel
        VNs; the input window is shared across the ``T_K`` filter VNs, and
        neighbouring output pixels overlap (halo reuse), so the unique input
        count is the union window, not ``vn_size * num_vns``.
        """
        weights = mapping.T_K * mapping.T_G * mapping.T_C * mapping.T_R * mapping.T_S
        in_rows = (mapping.T_X - 1) * layer.stride_h + mapping.T_R
        in_cols = (mapping.T_Y - 1) * layer.stride_w + mapping.T_S
        inputs = mapping.T_G * mapping.T_C * in_rows * in_cols * mapping.T_N
        return _IterationProfile(
            unique_weights=weights,
            unique_inputs=inputs,
            outputs=mapping.num_vns,
            macs=mapping.vn_size * mapping.num_vns,
        )

    @staticmethod
    def _fc_profile(layer: FcLayer, mapping: FcMapping) -> _IterationProfile:
        """Unique operand counts for one dense tile iteration.

        Every weight is distinct (``T_S * T_K``); the ``T_K`` input
        activations are multicast across the ``T_S`` output-neuron VNs.
        """
        return _IterationProfile(
            unique_weights=mapping.T_S * mapping.T_K,
            unique_inputs=mapping.T_K * mapping.T_N,
            outputs=mapping.num_vns,
            macs=mapping.vn_size * mapping.num_vns,
        )

    # ------------------------------------------------------------------
    # psum accounting (see repro.stonne.stats module docs)
    # ------------------------------------------------------------------
    @staticmethod
    def conv_psums(layer: ConvLayer, mapping: ConvMapping) -> int:
        """Accumulation-buffer writebacks plus per-iteration flushes.

        One writeback per output element per temporal reduction fold, plus
        one configuration-flush psum per tile iteration (the same flush
        term the FC counter has).  Minimizing this maximizes spatial
        reduction (``T_R*T_S*T_C``) first and output parallelism second.
        """
        return (
            layer.output_elements * mapping.reduction_folds(layer)
            + mapping.iterations(layer)
        )

    @staticmethod
    def fc_psums(layer: FcLayer, mapping: FcMapping) -> int:
        """Reduction-network psums: spatial adds plus one flush per iteration."""
        iterations = mapping.iterations(layer)
        spatial_per_iter = mapping.num_vns * max(0, mapping.vn_size - 1)
        return iterations * (spatial_per_iter + 1)

    # ------------------------------------------------------------------
    # cycle model core
    # ------------------------------------------------------------------
    def _simulate(
        self,
        layer: Union[ConvLayer, FcLayer],
        mapping: Union[ConvMapping, FcMapping],
        profile: _IterationProfile,
        red_folds: int,
        iterations: int,
        psums: int,
    ) -> SimulationStats:
        self.multipliers.check_fit(mapping.vn_size, mapping.num_vns)
        params = self.params

        dn_cycles = self.distribution.cycles_to_distribute(
            profile.unique_weights + profile.unique_inputs
        )
        rn_partial = self.reduction.cycles_to_collect(profile.outputs, partial=True)
        rn_final = self.reduction.cycles_to_collect(profile.outputs, partial=False)
        compute = self.multipliers.compute_cycles(
            profile.macs, mapping.multipliers_used
        )
        raw_stall = self.accumulator.hazard_stall(red_folds > 1)

        out_iters = iterations // red_folds
        partial_iters = out_iters * (red_folds - 1)
        final_iters = iterations - partial_iters

        ii_partial = max(dn_cycles, rn_partial, compute, raw_stall, 1)
        ii_final = max(dn_cycles, rn_final, compute, raw_stall, 1)

        fill = (
            params.config_cycles
            + self.distribution.fill_latency() * params.pipeline_fill_per_level
            + self.reduction.reduction_latency(mapping.vn_size)
        )
        steady = partial_iters * ii_partial + final_iters * ii_final
        cycles = fill + steady

        self.accumulator.record_partial_writes(partial_iters * profile.outputs)
        self.accumulator.record_final_writes(final_iters * profile.outputs)

        traffic = TrafficBreakdown(
            weights_distributed=iterations * profile.unique_weights,
            inputs_distributed=iterations * profile.unique_inputs,
            psums_reduced=psums,
            outputs_written=layer.output_elements,
        )
        return SimulationStats(
            layer_name=layer.name,
            controller=self.config.controller_type.value,
            cycles=cycles,
            psums=psums,
            macs=layer.macs,
            iterations=iterations,
            multipliers_used=mapping.multipliers_used,
            array_size=self.config.ms_size,
            traffic=traffic,
            phase_cycles={"fill": fill, "steady": steady},
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run_conv(
        self, layer: ConvLayer, mapping: Optional[ConvMapping] = None
    ) -> SimulationStats:
        """Simulate a conv2d layer under ``mapping``; returns its stats.

        Without a mapping the basic all-ones default is used, matching
        Bifrost's fallback behaviour.
        """
        mapping = mapping or ConvMapping.basic()
        mapping.validate_for(layer, self.config.ms_size)
        profile = self._conv_profile(layer, mapping)
        return self._simulate(
            layer,
            mapping,
            profile,
            red_folds=mapping.reduction_folds(layer),
            iterations=mapping.iterations(layer),
            psums=self.conv_psums(layer, mapping),
        )

    def run_fc(
        self, layer: FcLayer, mapping: Optional[FcMapping] = None
    ) -> SimulationStats:
        """Simulate a dense layer under ``mapping``; returns its stats."""
        mapping = mapping or FcMapping.basic()
        mapping.validate_for(layer, self.config.ms_size)
        profile = self._fc_profile(layer, mapping)
        return self._simulate(
            layer,
            mapping,
            profile,
            red_folds=mapping.reduction_folds(layer),
            iterations=mapping.iterations(layer),
            psums=self.fc_psums(layer, mapping),
        )

    def estimate_conv_psums(
        self, layer: ConvLayer, mapping: Optional[ConvMapping] = None
    ) -> int:
        """Fast psum estimate without running the cycle model (§VII-B).

        STONNE computes the psum count "in less than a second" because no
        execution is needed; here it is a closed form.
        """
        mapping = mapping or ConvMapping.basic()
        mapping.validate_for(layer, self.config.ms_size)
        return self.conv_psums(layer, mapping)

    def estimate_fc_psums(
        self, layer: FcLayer, mapping: Optional[FcMapping] = None
    ) -> int:
        """Fast psum estimate for a dense layer (no cycle simulation)."""
        mapping = mapping or FcMapping.basic()
        mapping.validate_for(layer, self.config.ms_size)
        return self.fc_psums(layer, mapping)

    # ------------------------------------------------------------------
    # vectorized batch kernels
    # ------------------------------------------------------------------
    # One numpy pass over a whole group of mappings for the same layer —
    # the tuner/sweep hot path.  Bit-identity with the scalar methods is
    # the contract (see AcceleratorController): the array math is
    # integer-only, rows the scalar path would reject (or whose
    # intermediates could overflow int64) are re-run through the scalar
    # method so messages, error types and arbitrary-precision results
    # stay exactly identical.

    def run_conv_batch(
        self, layer: ConvLayer, mappings: Sequence[Optional[ConvMapping]]
    ) -> List[Union[SimulationStats, Exception]]:
        return self._batch_kernel(layer, mappings, conv=True, estimate=False)

    def run_fc_batch(
        self, layer: FcLayer, mappings: Sequence[Optional[FcMapping]]
    ) -> List[Union[SimulationStats, Exception]]:
        return self._batch_kernel(layer, mappings, conv=False, estimate=False)

    def estimate_conv_psums_batch(
        self, layer: ConvLayer, mappings: Sequence[Optional[ConvMapping]]
    ) -> List[Union[int, Exception]]:
        return self._batch_kernel(layer, mappings, conv=True, estimate=True)

    def estimate_fc_psums_batch(
        self, layer: FcLayer, mappings: Sequence[Optional[FcMapping]]
    ) -> List[Union[int, Exception]]:
        return self._batch_kernel(layer, mappings, conv=False, estimate=True)

    def _batch_kernel(self, layer, mappings, conv: bool, estimate: bool) -> List:
        import numpy as np

        results: List = [None] * len(mappings)
        if not mappings:
            return results

        if estimate:
            scalar = self.estimate_conv_psums if conv else self.estimate_fc_psums
        else:
            scalar = self.run_conv if conv else self.run_fc
        count = _batch_count(layer)
        base = layer if count == 1 else _single_batch(layer)
        ms_size = self.config.ms_size

        try:
            bad, arrays = self._batch_arrays(base, mappings, count, conv, estimate)
        except OverflowError:
            # A layer dimension or tile beyond int64; Python's
            # arbitrary-precision scalar path handles it.
            return [_captured(scalar, layer, m) for m in mappings]

        # Flagged rows (invalid mapping, batch-parallel T_N, TEMPORALRN
        # spatial reduction, or int64-overflow risk) replay through the
        # scalar method: same result or the exact exception it raises.
        for row in np.flatnonzero(bad).tolist():
            results[row] = _captured(scalar, layer, mappings[row])
        ok = np.flatnonzero(~bad)
        if not ok.size:
            return results

        if estimate:
            for pos, value in enumerate(arrays["psums"].tolist()):
                results[ok[pos]] = value * count
            return results

        # Accumulator tallies are recorded for the N=1 base run, exactly
        # like the scalar wrapper (``repeated`` never touches them).
        self.accumulator.record_partial_writes(sum(arrays["partial_writes"].tolist()))
        self.accumulator.record_final_writes(sum(arrays["final_writes"].tolist()))

        name = layer.name
        ctrl = self.config.controller_type.value
        macs_total = base.macs * count
        outputs_written = base.output_elements * count
        cycles_l = (arrays["cycles"] * count).tolist()
        psums_l = (arrays["psums"] * count).tolist()
        iters_l = (arrays["iterations"] * count).tolist()
        used_l = arrays["used"].tolist()
        wd_l = (arrays["weights_distributed"] * count).tolist()
        id_l = (arrays["inputs_distributed"] * count).tolist()
        fill_l = (arrays["fill"] * count).tolist()
        steady_l = (arrays["steady"] * count).tolist()
        for pos, row in enumerate(ok.tolist()):
            results[row] = SimulationStats(
                layer_name=name,
                controller=ctrl,
                cycles=cycles_l[pos],
                psums=psums_l[pos],
                macs=macs_total,
                iterations=iters_l[pos],
                multipliers_used=used_l[pos],
                array_size=ms_size,
                traffic=TrafficBreakdown(
                    weights_distributed=wd_l[pos],
                    inputs_distributed=id_l[pos],
                    psums_reduced=psums_l[pos],
                    outputs_written=outputs_written,
                ),
                phase_cycles={"fill": fill_l[pos], "steady": steady_l[pos]},
            )
        return results

    def _batch_arrays(self, base, mappings, count: int, conv: bool, estimate: bool):
        """The (bad-row mask, per-valid-row int64 arrays) for a batch.

        Pure computation — no accumulator side effects — so callers can
        abandon it (overflow fallback) without double counting.
        """
        import numpy as np

        ms_size = self.config.ms_size
        if conv:
            default = ConvMapping.basic()
            normalized = [default if m is None else m for m in mappings]
            tiles = pack_conv_mappings(normalized)
            bad = conv_batch_invalid(base, tiles, ms_size)
            t_n = tiles[:, 5]
            spatial_one = (
                (tiles[:, 0] == 1) & (tiles[:, 1] == 1) & (tiles[:, 2] == 1)
            )
            fold_bounds = (
                base.R, base.S, base.C // base.G, base.K // base.G,
                base.G, base.N, base.P, base.Q,
            )
        else:
            default = FcMapping.basic()
            normalized = [default if m is None else m for m in mappings]
            tiles = pack_fc_mappings(normalized)
            bad = fc_batch_invalid(base, tiles, ms_size)
            t_n = tiles[:, 2]
            spatial_one = tiles[:, 1] == 1
            fold_bounds = (base.out_features, base.in_features, base.batch)
        if count > 1:
            # The scalar wrapper rejects batch-parallel T_N before
            # validation; replaying flagged rows preserves that ordering.
            bad = bad | (t_n != 1)
        if not estimate and isinstance(self.reduction, TemporalRN):
            bad = bad | ~spatial_one

        if max(fold_bounds) >= 2 ** 62:
            raise OverflowError("layer dimension beyond the int64 kernel")
        folds = np.stack(
            [-(-bound // tiles[:, i]) for i, bound in enumerate(fold_bounds)]
        )

        # Overflow guard in float64: float products of the (individually
        # small) columns bound every int64 product the kernel forms; rows
        # within 4x of int64 range go back to the exact scalar path.
        tf = tiles.T.astype(np.float64)
        ff = folds.astype(np.float64)
        iter_f = ff.prod(axis=0)
        if conv:
            red_f = ff[0] * ff[1] * ff[2]
            vn_f = tf[0] * tf[1] * tf[2]
            num_f = tf[3] * tf[4] * tf[5] * tf[6] * tf[7]
            w_f = vn_f * tf[3] * tf[4]
            in_rows_f = (tf[6] - 1) * base.stride_h + tf[0]
            in_cols_f = (tf[7] - 1) * base.stride_w + tf[1]
            i_f = tf[4] * tf[2] * in_rows_f * in_cols_f * tf[5]
            psum_f = float(base.output_elements) * red_f + iter_f
        else:
            red_f = ff[1]
            vn_f = tf[1]
            num_f = tf[0] * tf[2]
            w_f = tf[0] * tf[1]
            i_f = tf[1] * tf[2]
            psum_f = iter_f * (num_f * np.maximum(vn_f - 1.0, 0.0) + 1.0)
        occ = self.reduction.rmw_occupancy
        stall_const = self.accumulator.hazard_stall(True)
        per_iter_f = w_f + i_f + num_f * occ + stall_const + 1.0
        big = iter_f * per_iter_f * count > _INT64_SAFE
        big |= psum_f * count > _INT64_SAFE
        big |= vn_f * num_f > _INT64_SAFE
        bad = bad | big

        ok = ~bad
        st = tiles[ok].T
        sf = folds[:, ok]
        iterations = sf.prod(axis=0)
        if conv:
            red = sf[0] * sf[1] * sf[2]
            vn = st[0] * st[1] * st[2]
            num = st[3] * st[4] * st[5] * st[6] * st[7]
            weights = vn * st[3] * st[4]
            in_rows = (st[6] - 1) * base.stride_h + st[0]
            in_cols = (st[7] - 1) * base.stride_w + st[1]
            inputs = st[4] * st[2] * in_rows * in_cols * st[5]
            psums = base.output_elements * red + iterations
        else:
            red = sf[1]
            vn = st[1]
            num = st[0] * st[2]
            weights = st[0] * st[1]
            inputs = st[1] * st[2]
            psums = iterations * (num * np.maximum(vn - 1, 0) + 1)
        if estimate:
            return bad, {"psums": psums}

        used = vn * num
        dn = -(-(weights + inputs) // self.config.dn_bw)
        rn_partial = -(-(num * occ) // self.config.rn_bw)
        rn_final = -(-num // self.config.rn_bw)
        compute = -(-(vn * num) // used)
        raw = np.where(red > 1, np.int64(stall_const), np.int64(0))
        out_iters = iterations // red
        partial_iters = out_iters * (red - 1)
        final_iters = iterations - partial_iters
        one = np.ones_like(dn)
        ii_partial = np.maximum.reduce([dn, rn_partial, compute, raw, one])
        ii_final = np.maximum.reduce([dn, rn_final, compute, raw, one])
        fill = (
            self.params.config_cycles
            + self.distribution.fill_latency() * self.params.pipeline_fill_per_level
            + self.reduction.reduction_latency_batch(vn)
        )
        steady = partial_iters * ii_partial + final_iters * ii_final
        return bad, {
            "psums": psums,
            "iterations": iterations,
            "used": used,
            "weights_distributed": iterations * weights,
            "inputs_distributed": iterations * inputs,
            "fill": fill,
            "steady": steady,
            "cycles": fill + steady,
            "partial_writes": partial_iters * num,
            "final_writes": final_iters * num,
        }
