"""MAERI controller: cycle-level model of the reconfigurable dense fabric.

MAERI [Kwon et al., ASPLOS'18] couples a linear multiplier array to a
chubby distribution tree and an Augmented Reduction Tree (ART).  A mapping
partitions the array into *virtual neurons* (VNs): groups of multipliers
that spatially reduce one output element per tile iteration, while the
remaining dimensions fold temporally.

The model (DESIGN.md §3) computes, per tile iteration, the steady-state
initiation interval ``II = max(dn, rn, compute, raw_stall)`` where

* ``dn`` — cycles to inject the iteration's *unique* operands into the
  distribution tree (weights multicast across ``T_X/T_Y`` VNs and inputs
  multicast across ``T_K`` count once);
* ``rn`` — cycles to drain the iteration's outputs, with partial outputs
  paying the accumulation-buffer read-modify-write occupancy;
* ``compute`` — 1 in the common case (every occupied PE retires one MAC
  per cycle);
* ``raw_stall`` — the accumulation RAW hazard, paid whenever the iteration
  accumulates onto outputs the previous iteration wrote (temporal
  reduction folds).

Identical steady-state iterations are batched ("macro-tile batching"), so
simulating a layer is O(1) in the iteration count while remaining a
deterministic function of (layer, config, mapping) exactly like STONNE.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.errors import ConfigError
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.controller import AcceleratorController, register_controller
from repro.stonne.distribution import DistributionNetwork
from repro.stonne.layer import ConvLayer, FcLayer, ceil_div
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.memory import AccumulationBuffer
from repro.stonne.multiplier import LinearMultiplierNetwork
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.reduction import make_reduction_network
from repro.stonne.stats import SimulationStats, TrafficBreakdown


@dataclass(frozen=True)
class _IterationProfile:
    """Per-iteration operand and output counts for a mapping."""

    unique_weights: int
    unique_inputs: int
    outputs: int
    macs: int


@register_controller(ControllerType.MAERI_DENSE_WORKLOAD)
class MaeriController(AcceleratorController):
    """Simulates conv2d and dense workloads on a MAERI configuration."""

    workloads = frozenset({"conv", "fc"})
    requires_mapping = True

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        if config.controller_type is not ControllerType.MAERI_DENSE_WORKLOAD:
            raise ConfigError(
                f"MaeriController requires a MAERI config, got "
                f"{config.controller_type.value}"
            )
        self.config = config
        self.params = params
        self.multipliers = LinearMultiplierNetwork(size=config.ms_size)
        self.distribution = DistributionNetwork(
            bandwidth=config.dn_bw, fanout=config.ms_size
        )
        self.reduction = make_reduction_network(
            config.reduce_network_type.value,
            bandwidth=config.rn_bw,
            rmw_occupancy=params.rmw_occupancy,
        )
        self.accumulator = AccumulationBuffer(
            enabled=config.accumulation_buffer,
            raw_latency=params.acc_raw_latency,
        )

    # ------------------------------------------------------------------
    # workload-specific iteration profiles
    # ------------------------------------------------------------------
    @staticmethod
    def _conv_profile(layer: ConvLayer, mapping: ConvMapping) -> _IterationProfile:
        """Unique operand counts for one conv tile iteration.

        Weights are shared (multicast) across the ``T_X * T_Y`` output-pixel
        VNs; the input window is shared across the ``T_K`` filter VNs, and
        neighbouring output pixels overlap (halo reuse), so the unique input
        count is the union window, not ``vn_size * num_vns``.
        """
        weights = mapping.T_K * mapping.T_G * mapping.T_C * mapping.T_R * mapping.T_S
        in_rows = (mapping.T_X - 1) * layer.stride_h + mapping.T_R
        in_cols = (mapping.T_Y - 1) * layer.stride_w + mapping.T_S
        inputs = mapping.T_G * mapping.T_C * in_rows * in_cols * mapping.T_N
        return _IterationProfile(
            unique_weights=weights,
            unique_inputs=inputs,
            outputs=mapping.num_vns,
            macs=mapping.vn_size * mapping.num_vns,
        )

    @staticmethod
    def _fc_profile(layer: FcLayer, mapping: FcMapping) -> _IterationProfile:
        """Unique operand counts for one dense tile iteration.

        Every weight is distinct (``T_S * T_K``); the ``T_K`` input
        activations are multicast across the ``T_S`` output-neuron VNs.
        """
        return _IterationProfile(
            unique_weights=mapping.T_S * mapping.T_K,
            unique_inputs=mapping.T_K * mapping.T_N,
            outputs=mapping.num_vns,
            macs=mapping.vn_size * mapping.num_vns,
        )

    # ------------------------------------------------------------------
    # psum accounting (see repro.stonne.stats module docs)
    # ------------------------------------------------------------------
    @staticmethod
    def conv_psums(layer: ConvLayer, mapping: ConvMapping) -> int:
        """Accumulation-buffer writebacks plus per-iteration flushes.

        One writeback per output element per temporal reduction fold, plus
        one configuration-flush psum per tile iteration (the same flush
        term the FC counter has).  Minimizing this maximizes spatial
        reduction (``T_R*T_S*T_C``) first and output parallelism second.
        """
        return (
            layer.output_elements * mapping.reduction_folds(layer)
            + mapping.iterations(layer)
        )

    @staticmethod
    def fc_psums(layer: FcLayer, mapping: FcMapping) -> int:
        """Reduction-network psums: spatial adds plus one flush per iteration."""
        iterations = mapping.iterations(layer)
        spatial_per_iter = mapping.num_vns * max(0, mapping.vn_size - 1)
        return iterations * (spatial_per_iter + 1)

    # ------------------------------------------------------------------
    # cycle model core
    # ------------------------------------------------------------------
    def _simulate(
        self,
        layer: Union[ConvLayer, FcLayer],
        mapping: Union[ConvMapping, FcMapping],
        profile: _IterationProfile,
        red_folds: int,
        iterations: int,
        psums: int,
    ) -> SimulationStats:
        self.multipliers.check_fit(mapping.vn_size, mapping.num_vns)
        params = self.params

        dn_cycles = self.distribution.cycles_to_distribute(
            profile.unique_weights + profile.unique_inputs
        )
        rn_partial = self.reduction.cycles_to_collect(profile.outputs, partial=True)
        rn_final = self.reduction.cycles_to_collect(profile.outputs, partial=False)
        compute = self.multipliers.compute_cycles(
            profile.macs, mapping.multipliers_used
        )
        raw_stall = self.accumulator.hazard_stall(red_folds > 1)

        out_iters = iterations // red_folds
        partial_iters = out_iters * (red_folds - 1)
        final_iters = iterations - partial_iters

        ii_partial = max(dn_cycles, rn_partial, compute, raw_stall, 1)
        ii_final = max(dn_cycles, rn_final, compute, raw_stall, 1)

        fill = (
            params.config_cycles
            + self.distribution.fill_latency() * params.pipeline_fill_per_level
            + self.reduction.reduction_latency(mapping.vn_size)
        )
        steady = partial_iters * ii_partial + final_iters * ii_final
        cycles = fill + steady

        self.accumulator.record_partial_writes(partial_iters * profile.outputs)
        self.accumulator.record_final_writes(final_iters * profile.outputs)

        traffic = TrafficBreakdown(
            weights_distributed=iterations * profile.unique_weights,
            inputs_distributed=iterations * profile.unique_inputs,
            psums_reduced=psums,
            outputs_written=layer.output_elements,
        )
        return SimulationStats(
            layer_name=layer.name,
            controller=self.config.controller_type.value,
            cycles=cycles,
            psums=psums,
            macs=layer.macs,
            iterations=iterations,
            multipliers_used=mapping.multipliers_used,
            array_size=self.config.ms_size,
            traffic=traffic,
            phase_cycles={"fill": fill, "steady": steady},
        )

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def run_conv(
        self, layer: ConvLayer, mapping: Optional[ConvMapping] = None
    ) -> SimulationStats:
        """Simulate a conv2d layer under ``mapping``; returns its stats.

        Without a mapping the basic all-ones default is used, matching
        Bifrost's fallback behaviour.
        """
        mapping = mapping or ConvMapping.basic()
        mapping.validate_for(layer, self.config.ms_size)
        profile = self._conv_profile(layer, mapping)
        return self._simulate(
            layer,
            mapping,
            profile,
            red_folds=mapping.reduction_folds(layer),
            iterations=mapping.iterations(layer),
            psums=self.conv_psums(layer, mapping),
        )

    def run_fc(
        self, layer: FcLayer, mapping: Optional[FcMapping] = None
    ) -> SimulationStats:
        """Simulate a dense layer under ``mapping``; returns its stats."""
        mapping = mapping or FcMapping.basic()
        mapping.validate_for(layer, self.config.ms_size)
        profile = self._fc_profile(layer, mapping)
        return self._simulate(
            layer,
            mapping,
            profile,
            red_folds=mapping.reduction_folds(layer),
            iterations=mapping.iterations(layer),
            psums=self.fc_psums(layer, mapping),
        )

    def estimate_conv_psums(
        self, layer: ConvLayer, mapping: Optional[ConvMapping] = None
    ) -> int:
        """Fast psum estimate without running the cycle model (§VII-B).

        STONNE computes the psum count "in less than a second" because no
        execution is needed; here it is a closed form.
        """
        mapping = mapping or ConvMapping.basic()
        mapping.validate_for(layer, self.config.ms_size)
        return self.conv_psums(layer, mapping)

    def estimate_fc_psums(
        self, layer: FcLayer, mapping: Optional[FcMapping] = None
    ) -> int:
        """Fast psum estimate for a dense layer (no cycle simulation)."""
        mapping = mapping or FcMapping.basic()
        mapping.validate_for(layer, self.config.ms_size)
        return self.fc_psums(layer, mapping)
