"""Hardware configuration of the simulated accelerators (paper Table III).

:class:`SimulatorConfig` is a *validated* value object: constructing one
with an invalid combination raises :class:`~repro.errors.ConfigError`.  The
validation rules are exactly the ones Bifrost enforces on top of STONNE
(§VI of the paper), which "eliminates undefined behaviour from occurring in
STONNE":

* ``ms_size`` must be a power of two and at least 8 (``LINEAR`` networks);
* ``ms_rows``/``ms_cols`` must be powers of two (``OS_MESH`` networks);
* ``dn_bw`` and ``rn_bw`` must be powers of two;
* MAERI and SIGMA must use the ``LINEAR`` multiplier network, the TPU must
  use ``OS_MESH``;
* the TPU must use the ``TEMPORALRN`` reduction network, an accumulation
  buffer, and has its distribution/reduction bandwidths fixed to
  ``rows + cols`` and ``rows * cols`` respectively;
* ``sparsity_ratio`` is a percentage in [0, 100] and only meaningful for
  SIGMA.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from enum import Enum
from typing import Any, Dict, Optional

from repro.errors import ConfigError
from repro.stonne.layer import is_power_of_two
from repro.stonne.params import DEFAULT_DN_BW, DEFAULT_MS_SIZE, DEFAULT_RN_BW


class ControllerType(str, Enum):
    """The simulated accelerator architecture (Table III).

    ``MAGMA_SPARSE_DENSE`` is the future-work extension of §IX (sparse-
    dense matrix multiplication, enabling MAGMA-style designs); the other
    three are the architectures the paper evaluates.
    """

    MAERI_DENSE_WORKLOAD = "MAERI_DENSE_WORKLOAD"
    SIGMA_SPARSE_GEMM = "SIGMA_SPARSE_GEMM"
    TPU_OS_DENSE = "TPU_OS_DENSE"
    MAGMA_SPARSE_DENSE = "MAGMA_SPARSE_DENSE"


class MsNetworkType(str, Enum):
    """Topology of the multiplier switch network."""

    LINEAR = "LINEAR"
    OS_MESH = "OS_MESH"


class ReduceNetworkType(str, Enum):
    """Reduction network implementations available in STONNE.

    ``ASNETWORK`` is MAERI's ART (augmented reduction tree), ``FENETWORK``
    is the STIFT/FEN spatio-temporal fabric, and ``TEMPORALRN`` is the
    temporal reduction used by rigid architectures such as the TPU.
    """

    ASNETWORK = "ASNETWORK"
    FENETWORK = "FENETWORK"
    TEMPORALRN = "TEMPORALRN"


#: Architectures whose multiplier network must be LINEAR.
_LINEAR_CONTROLLERS = (
    ControllerType.MAERI_DENSE_WORKLOAD,
    ControllerType.SIGMA_SPARSE_GEMM,
    ControllerType.MAGMA_SPARSE_DENSE,
)

#: Architectures that consume a sparsity ratio.
_SPARSE_CONTROLLERS = (
    ControllerType.SIGMA_SPARSE_GEMM,
    ControllerType.MAGMA_SPARSE_DENSE,
)


@dataclass(frozen=True)
class SimulatorConfig:
    """A complete, validated STONNE hardware configuration.

    Use keyword construction or the :func:`maeri_config` /
    :func:`sigma_config` / :func:`tpu_config` helpers.  Instances are
    immutable; derive variants with :meth:`with_updates`.
    """

    controller_type: ControllerType = ControllerType.MAERI_DENSE_WORKLOAD
    ms_network_type: MsNetworkType = MsNetworkType.LINEAR
    ms_size: int = DEFAULT_MS_SIZE
    ms_rows: int = 16
    ms_cols: int = 16
    dn_bw: int = DEFAULT_DN_BW
    rn_bw: int = DEFAULT_RN_BW
    reduce_network_type: ReduceNetworkType = ReduceNetworkType.ASNETWORK
    sparsity_ratio: int = 0
    accumulation_buffer: bool = True

    def __post_init__(self) -> None:
        self._validate()

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        ct = ControllerType(self.controller_type)
        nt = MsNetworkType(self.ms_network_type)
        rt = ReduceNetworkType(self.reduce_network_type)
        object.__setattr__(self, "controller_type", ct)
        object.__setattr__(self, "ms_network_type", nt)
        object.__setattr__(self, "reduce_network_type", rt)

        if ct in _LINEAR_CONTROLLERS:
            if nt is not MsNetworkType.LINEAR:
                raise ConfigError(
                    f"{ct.value} requires ms_network_type=LINEAR, got {nt.value}"
                )
            if not is_power_of_two(self.ms_size) or self.ms_size < 8:
                raise ConfigError(
                    f"ms_size must be a power of two >= 8, got {self.ms_size}"
                )
        else:  # TPU
            if nt is not MsNetworkType.OS_MESH:
                raise ConfigError(
                    f"{ct.value} requires ms_network_type=OS_MESH, got {nt.value}"
                )
            if not is_power_of_two(self.ms_rows):
                raise ConfigError(f"ms_rows must be a power of two, got {self.ms_rows}")
            if not is_power_of_two(self.ms_cols):
                raise ConfigError(f"ms_cols must be a power of two, got {self.ms_cols}")
            if rt is not ReduceNetworkType.TEMPORALRN:
                raise ConfigError(
                    f"TPU requires reduce_network_type=TEMPORALRN, got {rt.value}"
                )
            if not self.accumulation_buffer:
                raise ConfigError("TPU requires accumulation_buffer=True")
            expected_dn = self.ms_rows + self.ms_cols
            expected_rn = self.ms_rows * self.ms_cols
            if self.dn_bw != expected_dn or self.rn_bw != expected_rn:
                raise ConfigError(
                    "TPU requires dn_bw = ms_rows + ms_cols = "
                    f"{expected_dn} and rn_bw = ms_rows * ms_cols = {expected_rn}; "
                    f"got dn_bw={self.dn_bw}, rn_bw={self.rn_bw}. "
                    "Use bifrost.SimulatorConfigurator, which corrects these "
                    "automatically."
                )

        if ct is ControllerType.TPU_OS_DENSE:
            pass  # TPU bandwidths validated above (not power-of-two constrained)
        else:
            if not is_power_of_two(self.dn_bw):
                raise ConfigError(f"dn_bw must be a power of two, got {self.dn_bw}")
            if not is_power_of_two(self.rn_bw):
                raise ConfigError(f"rn_bw must be a power of two, got {self.rn_bw}")

        if rt is ReduceNetworkType.TEMPORALRN and ct in _LINEAR_CONTROLLERS:
            raise ConfigError(
                f"{ct.value} cannot use the TEMPORALRN reduction network"
            )

        if not isinstance(self.sparsity_ratio, int) or isinstance(self.sparsity_ratio, bool):
            raise ConfigError(
                f"sparsity_ratio must be an integer percentage, got {self.sparsity_ratio!r}"
            )
        if not 0 <= self.sparsity_ratio <= 100:
            raise ConfigError(
                f"sparsity_ratio must be in [0, 100], got {self.sparsity_ratio}"
            )
        if self.sparsity_ratio and ct not in _SPARSE_CONTROLLERS:
            raise ConfigError(
                f"sparsity_ratio is only supported by SIGMA and MAGMA, got "
                f"sparsity_ratio={self.sparsity_ratio} for {ct.value}"
            )

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    @property
    def num_multipliers(self) -> int:
        """Total PEs, regardless of network topology."""
        if self.ms_network_type is MsNetworkType.OS_MESH:
            return self.ms_rows * self.ms_cols
        return self.ms_size

    def with_updates(self, **kwargs: Any) -> "SimulatorConfig":
        """Return a validated copy with the given fields replaced."""
        return replace(self, **kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize to plain types (enums become their string values)."""
        data = asdict(self)
        data["controller_type"] = self.controller_type.value
        data["ms_network_type"] = self.ms_network_type.value
        data["reduce_network_type"] = self.reduce_network_type.value
        return data

    def to_json(self) -> str:
        """Config-file form, mirroring STONNE's on-disk configuration."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SimulatorConfig":
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "SimulatorConfig":
        return cls.from_dict(json.loads(text))


def maeri_config(
    ms_size: int = DEFAULT_MS_SIZE,
    dn_bw: int = DEFAULT_DN_BW,
    rn_bw: int = DEFAULT_RN_BW,
    reduce_network_type: ReduceNetworkType = ReduceNetworkType.ASNETWORK,
    accumulation_buffer: bool = True,
) -> SimulatorConfig:
    """A validated MAERI configuration."""
    return SimulatorConfig(
        controller_type=ControllerType.MAERI_DENSE_WORKLOAD,
        ms_network_type=MsNetworkType.LINEAR,
        ms_size=ms_size,
        dn_bw=dn_bw,
        rn_bw=rn_bw,
        reduce_network_type=reduce_network_type,
        accumulation_buffer=accumulation_buffer,
    )


def sigma_config(
    ms_size: int = DEFAULT_MS_SIZE,
    dn_bw: int = DEFAULT_DN_BW,
    rn_bw: int = DEFAULT_RN_BW,
    sparsity_ratio: int = 0,
) -> SimulatorConfig:
    """A validated SIGMA configuration.

    SIGMA uses the FENETWORK (forwarding adder network) reduction fabric.
    """
    return SimulatorConfig(
        controller_type=ControllerType.SIGMA_SPARSE_GEMM,
        ms_network_type=MsNetworkType.LINEAR,
        ms_size=ms_size,
        dn_bw=dn_bw,
        rn_bw=rn_bw,
        reduce_network_type=ReduceNetworkType.FENETWORK,
        sparsity_ratio=sparsity_ratio,
    )


def magma_config(
    ms_size: int = DEFAULT_MS_SIZE,
    dn_bw: int = DEFAULT_DN_BW,
    rn_bw: int = DEFAULT_RN_BW,
    sparsity_ratio: int = 0,
) -> SimulatorConfig:
    """A validated MAGMA (sparse-dense GEMM) configuration.

    Like SIGMA it uses a linear multiplier array with a forwarding
    reduction fabric; unlike SIGMA its front end consumes one sparse and
    one dense operand (sparse-dense matrix multiplication).
    """
    return SimulatorConfig(
        controller_type=ControllerType.MAGMA_SPARSE_DENSE,
        ms_network_type=MsNetworkType.LINEAR,
        ms_size=ms_size,
        dn_bw=dn_bw,
        rn_bw=rn_bw,
        reduce_network_type=ReduceNetworkType.FENETWORK,
        sparsity_ratio=sparsity_ratio,
    )


def tpu_config(ms_rows: int = 16, ms_cols: int = 16) -> SimulatorConfig:
    """A validated TPU (output-stationary mesh) configuration.

    Distribution and reduction bandwidths are derived from the mesh shape as
    the paper mandates (``dn_bw = rows + cols``, ``rn_bw = rows * cols``).
    """
    return SimulatorConfig(
        controller_type=ControllerType.TPU_OS_DENSE,
        ms_network_type=MsNetworkType.OS_MESH,
        ms_rows=ms_rows,
        ms_cols=ms_cols,
        dn_bw=ms_rows + ms_cols,
        rn_bw=ms_rows * ms_cols,
        reduce_network_type=ReduceNetworkType.TEMPORALRN,
        accumulation_buffer=True,
    )
