"""The accelerator controller abstraction and its registry.

Every simulated architecture implements :class:`AcceleratorController` —
a uniform ``run_conv`` / ``run_fc`` / ``run_gemm`` /
``estimate_conv_psums`` / ``estimate_fc_psums`` / ``supports`` surface —
and registers itself under its :class:`~repro.stonne.config.ControllerType`
with :func:`register_controller`.  Dispatch sites (the :class:`Stonne`
facade, the Bifrost API and runners, the tuner tasks) resolve a config to
its controller with a single :func:`make_controller` call instead of
duplicated ``if controller_type is ...`` chains, so adding an
architecture is one registration, not four edited call sites.

The registry is keyed by the controller type's *string value*, which lets
tests (and future extensions) register controllers for types that are not
members of the :class:`ControllerType` enum yet.
"""

from __future__ import annotations

import functools
from dataclasses import replace as _dataclass_replace
from typing import (
    Callable,
    ClassVar,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Type,
    Union,
)

from repro.errors import ConfigError, UnsupportedLayerError
from repro.stonne.config import ControllerType
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer
from repro.stonne.mapping import ConvMapping, FcMapping
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.stats import SimulationStats

#: Registry keys accept the enum or its raw string value.
ControllerKey = Union[ControllerType, str]


def _key(controller_type: ControllerKey) -> str:
    return str(getattr(controller_type, "value", controller_type))


# ----------------------------------------------------------------------
# batch-N modelling
# ----------------------------------------------------------------------
#: Controller methods that receive a (layer, mapping) pair and are
#: transparently batch-expanded by :meth:`AcceleratorController.__init_subclass__`.
_BATCH_AWARE_METHODS = (
    "run_conv",
    "run_fc",
    "estimate_conv_psums",
    "estimate_fc_psums",
)


def _batch_count(layer) -> int:
    """How many sequential single-batch executions ``layer`` needs."""
    if isinstance(layer, ConvLayer):
        return layer.N
    if isinstance(layer, FcLayer):
        return layer.batch
    return 1


def _single_batch(layer):
    """The N=1 replica of a batched layer (name and shape preserved)."""
    if isinstance(layer, ConvLayer):
        return _dataclass_replace(layer, N=1)
    return _dataclass_replace(layer, batch=1)


def _batch_parallel_error(mapping, layer, count):
    """The error for a T_N > 1 mapping on a batch-N layer.

    Shared between the scalar batch-N wrapper and the vectorized batch
    kernels so the two paths can never disagree about the message.
    """
    from repro.errors import MappingError

    return MappingError(
        f"T_N={mapping.T_N} batch-parallel mappings are not "
        f"modelled; batch-N layers run as N sequential "
        f"simulations with T_N=1 (layer {layer.name!r}, N={count})"
    )


def _sequential_batches(method):
    """Wrap a (layer, mapping) controller method with batch-N expansion.

    The hardware executes one batch element at a time (STONNE's N==1),
    and every cycle model is deterministic, so a batch-N workload is
    exactly N identical sequential simulations: the wrapped method runs
    the N=1 replica once and the result is scaled — additive stats sum,
    occupancy takes the max (see :meth:`SimulationStats.repeated`).
    Psum *estimates* (plain ints) scale the same way, keeping the cheap
    tuning proxy consistent with the full model for batched layers.
    """
    if getattr(method, "_batch_expanded", False):  # pragma: no cover
        return method

    @functools.wraps(method)
    def wrapper(self, layer, mapping=None):
        count = _batch_count(layer)
        if count == 1:
            return method(self, layer, mapping)
        if mapping is not None and getattr(mapping, "T_N", 1) != 1:
            # Batch-parallel spatial schedules (T_N > 1) are not modelled
            # yet (see ROADMAP "Tiled batch schedules"); fail with the
            # real reason instead of "T_N exceeds batch=1" from the
            # single-batch replica's validation.
            raise _batch_parallel_error(mapping, layer, count)
        outcome = method(self, _single_batch(layer), mapping)
        if isinstance(outcome, SimulationStats):
            return outcome.repeated(count, layer_name=layer.name)
        return outcome * count

    wrapper._batch_expanded = True
    return wrapper


def _captured(method, layer, mapping):
    """One scalar batch-item call with its exception captured, not raised."""
    try:
        return method(layer, mapping)
    except Exception as exc:
        return exc


#: Batch kernels route rows whose intermediate products could exceed this
#: bound back through the exact scalar path: the array math is int64 while
#: Python ints are arbitrary-precision.  The 4x headroom below 2**63
#: absorbs the float64 rounding in the guard estimates themselves.
_INT64_SAFE = float(2 ** 61)

#: Above this bound an int->float64 conversion rounds, so float products
#: in a kernel could differ from the scalar path's exact-int-then-convert
#: ordering by an ulp; such rows also fall back to the scalar path.
_FLOAT_EXACT = float(2 ** 53)


def _lowered_gemm_batch(controller, layer, mappings):
    """Batch kernel for mapping-free controllers (SIGMA, TPU, MAGMA).

    Those fabrics ignore the mapping entirely, so every item of a
    same-layer group is the *same* simulation: run the lowered GEMM once
    and hand each item an independent copy (scaled by ``repeated`` for
    batch-N layers).  The only per-item divergence the scalar path has
    is the batch-parallel T_N rejection, reproduced here.
    """
    count = _batch_count(layer)
    base = layer if count == 1 else _single_batch(layer)
    template = None
    results: List[Union[SimulationStats, Exception]] = []
    for mapping in mappings:
        if count > 1 and mapping is not None and getattr(mapping, "T_N", 1) != 1:
            results.append(_batch_parallel_error(mapping, layer, count))
            continue
        if template is None:
            try:
                template = controller.run_gemm(base.as_gemm())
            except Exception as exc:
                results.append(exc)
                continue
            template.layer_name = layer.name
        results.append(template.repeated(count))
    return results


class AcceleratorController:
    """Uniform surface over the architecture-specific cycle models.

    Subclasses implement the ``run_*`` methods for the workloads they
    support and advertise their capabilities through class attributes:

    Attributes:
        workloads: Workload kinds (``"conv"``/``"fc"``/``"gemm"``) the
            architecture executes; :meth:`supports` checks membership.
        requires_mapping: True when the architecture consumes a
            user/tuner-provided dataflow mapping (MAERI).  Rigid or
            self-orchestrating fabrics (SIGMA, MAGMA, TPU) ignore
            mappings — their controllers generate the dataflow.
        consumes_sparsity: True when the architecture exploits a
            configured weight-sparsity ratio (SIGMA, MAGMA).
    """

    workloads: ClassVar[FrozenSet[str]] = frozenset({"conv", "fc", "gemm"})
    requires_mapping: ClassVar[bool] = False
    consumes_sparsity: ClassVar[bool] = False

    def __init_subclass__(cls, **kwargs) -> None:
        """Give every concrete controller batch-N semantics for free.

        Subclasses implement their cycle models for the single-batch
        case STONNE actually executes; any :data:`_BATCH_AWARE_METHODS`
        they define is wrapped so a batch-N layer runs as N sequential
        single-batch simulations with summed stats.  The models
        themselves never see ``N > 1``.
        """
        super().__init_subclass__(**kwargs)
        for name in _BATCH_AWARE_METHODS:
            if name in cls.__dict__:
                setattr(cls, name, _sequential_batches(cls.__dict__[name]))

    @classmethod
    def supports(cls, workload: str) -> bool:
        """True when this architecture can execute ``workload``."""
        return workload in cls.workloads

    # ------------------------------------------------------------------
    # workload execution; subclasses override what they support
    # ------------------------------------------------------------------
    def run_conv(
        self, layer: ConvLayer, mapping: Optional[ConvMapping] = None
    ) -> SimulationStats:
        raise UnsupportedLayerError(
            f"{type(self).__name__} does not execute conv2d workloads"
        )

    def run_fc(
        self, layer: FcLayer, mapping: Optional[FcMapping] = None
    ) -> SimulationStats:
        raise UnsupportedLayerError(
            f"{type(self).__name__} does not execute dense workloads"
        )

    def run_gemm(self, gemm: GemmLayer) -> SimulationStats:
        raise UnsupportedLayerError(
            "raw GEMM workloads require SIGMA, MAGMA or TPU; "
            "MAERI runs conv2d/dense"
        )

    # ------------------------------------------------------------------
    # batch kernels
    # ------------------------------------------------------------------
    # One call simulates a whole same-layer group of mappings.  The
    # contract, shared by these defaults and the vectorized overrides
    # (MAERI, SIGMA, TPU, MAGMA):
    #
    # * the returned list matches ``mappings`` in length and order;
    # * every element is either the scalar method's result for that item
    #   (a SimulationStats / psum int, batch-N ``repeated`` semantics
    #   included) or the exact exception instance the scalar call would
    #   have raised — one invalid mapping never poisons the batch;
    # * results are bit-identical to the scalar path (all array math in
    #   the overrides is integer-only), so batch execution is an
    #   optimization, never an approximation.
    #
    # The defaults loop the scalar methods, so third-party controllers
    # stay correct without opting in.

    def run_conv_batch(
        self, layer: ConvLayer, mappings: Sequence[Optional[ConvMapping]]
    ) -> List[Union[SimulationStats, Exception]]:
        """Simulate ``layer`` under every mapping; per-item error capture."""
        return [_captured(self.run_conv, layer, m) for m in mappings]

    def run_fc_batch(
        self, layer: FcLayer, mappings: Sequence[Optional[FcMapping]]
    ) -> List[Union[SimulationStats, Exception]]:
        """Simulate ``layer`` under every mapping; per-item error capture."""
        return [_captured(self.run_fc, layer, m) for m in mappings]

    def run_gemm_batch(
        self, gemms: Sequence[GemmLayer]
    ) -> List[Union[SimulationStats, Exception]]:
        """Simulate every GEMM; per-item error capture."""
        results: List[Union[SimulationStats, Exception]] = []
        for gemm in gemms:
            try:
                results.append(self.run_gemm(gemm))
            except Exception as exc:
                results.append(exc)
        return results

    def estimate_conv_psums_batch(
        self, layer: ConvLayer, mappings: Sequence[Optional[ConvMapping]]
    ) -> List[Union[int, Exception]]:
        """Psum estimates for every mapping; per-item error capture."""
        return [_captured(self.estimate_conv_psums, layer, m) for m in mappings]

    def estimate_fc_psums_batch(
        self, layer: FcLayer, mappings: Sequence[Optional[FcMapping]]
    ) -> List[Union[int, Exception]]:
        """Psum estimates for every mapping; per-item error capture."""
        return [_captured(self.estimate_fc_psums, layer, m) for m in mappings]

    # ------------------------------------------------------------------
    # psum estimation (the cheap tuning proxy of §VII-B)
    # ------------------------------------------------------------------
    def estimate_conv_psums(
        self, layer: ConvLayer, mapping: Optional[ConvMapping] = None
    ) -> int:
        """Psum count for a conv layer; the default runs the cycle model."""
        return self.run_conv(layer, mapping).psums

    def estimate_fc_psums(
        self, layer: FcLayer, mapping: Optional[FcMapping] = None
    ) -> int:
        """Psum count for a dense layer; the default runs the cycle model."""
        return self.run_fc(layer, mapping).psums


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
_REGISTRY: Dict[str, Type[AcceleratorController]] = {}


def register_controller(
    controller_type: ControllerKey,
) -> Callable[[Type[AcceleratorController]], Type[AcceleratorController]]:
    """Class decorator registering a controller for ``controller_type``."""
    key = _key(controller_type)

    def decorator(cls: Type[AcceleratorController]) -> Type[AcceleratorController]:
        existing = _REGISTRY.get(key)
        if existing is not None and existing is not cls:
            raise ConfigError(
                f"controller type {key!r} is already registered to "
                f"{existing.__name__}; unregister it first"
            )
        _REGISTRY[key] = cls
        return cls

    return decorator


def unregister_controller(controller_type: ControllerKey) -> None:
    """Remove a registration (tests and hot-swapping extensions)."""
    _REGISTRY.pop(_key(controller_type), None)


def _ensure_builtin_controllers() -> None:
    """Re-register the built-in controllers for any vacant type.

    Idempotent and lazy (avoids import cycles).  Registering directly —
    rather than relying on first-import side effects — means a built-in
    that was :func:`unregister_controller`'d (e.g. hot-swapped by a test)
    comes back on the next lookup instead of being lost for the process.
    ``setdefault`` never clobbers a live replacement registration.
    """
    from repro.stonne.maeri import MaeriController
    from repro.stonne.magma import MagmaController
    from repro.stonne.sigma import SigmaController
    from repro.stonne.tpu import TpuController

    builtins = {
        ControllerType.MAERI_DENSE_WORKLOAD: MaeriController,
        ControllerType.SIGMA_SPARSE_GEMM: SigmaController,
        ControllerType.MAGMA_SPARSE_DENSE: MagmaController,
        ControllerType.TPU_OS_DENSE: TpuController,
    }
    for controller_type, cls in builtins.items():
        _REGISTRY.setdefault(_key(controller_type), cls)


def controller_class(controller_type: ControllerKey) -> Type[AcceleratorController]:
    """The registered controller class for ``controller_type``."""
    key = _key(controller_type)
    if key not in _REGISTRY:
        _ensure_builtin_controllers()
    try:
        return _REGISTRY[key]
    except KeyError:
        raise ConfigError(
            f"no controller registered for {key!r}; "
            f"known types: {sorted(_REGISTRY)}"
        ) from None


def make_controller(
    config, params: CycleModelParams = DEFAULT_PARAMS
) -> AcceleratorController:
    """Instantiate the controller for ``config.controller_type``.

    ``config`` only needs a ``controller_type`` attribute plus whatever
    the resolved controller's constructor reads, so mock configs work.
    """
    return controller_class(config.controller_type)(config, params)


def registered_controller_types() -> List[str]:
    """Sorted registry keys (string values), built-ins included."""
    _ensure_builtin_controllers()
    return sorted(_REGISTRY)
