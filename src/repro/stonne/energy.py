"""Energy model (the paper's declared extension point).

At publication time STONNE's energy/area support was under development
and the paper states Bifrost "will support [energy and area] when they
are available" and names energy efficiency as a future tuning target
(§IX).  This module implements that extension: an event-count energy
model in the Eyeriss/Timeloop tradition — every MAC, network hop and
buffer access has a fixed energy cost, and a simulation's energy is the
dot product of its event counts with the cost table.

The default costs are relative units normalized to one MAC (= 1.0),
with ratios taken from the published 45 nm numbers the community uses
(SRAM access an order of magnitude above a MAC, on-chip hops in
between).  Absolute joules are out of scope; *relative* energy between
configurations and mappings is the quantity Bifrost would tune on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.stonne.stats import SimulationStats


@dataclass(frozen=True)
class EnergyTable:
    """Per-event energy costs, in units of one MAC operation.

    Attributes:
        mac: One multiply-accumulate in a PE.
        dn_transfer: Moving one element through the distribution network.
        rn_transfer: Moving one partial sum through the reduction network.
        buffer_read: One global-buffer read (weights/inputs sourced).
        buffer_write: One global-buffer write (outputs sunk).
        accumulator_rmw: One accumulation-buffer read-modify-write.
        leakage_per_cycle_per_pe: Static energy per cycle per PE; couples
            energy to both array size and execution time, which is what
            makes small-but-slow vs big-but-fast a real trade-off.
    """

    mac: float = 1.0
    dn_transfer: float = 2.0
    rn_transfer: float = 2.0
    buffer_read: float = 6.0
    buffer_write: float = 6.0
    accumulator_rmw: float = 2.5
    leakage_per_cycle_per_pe: float = 0.05

    def __post_init__(self) -> None:
        for field_name in (
            "mac", "dn_transfer", "rn_transfer", "buffer_read",
            "buffer_write", "accumulator_rmw", "leakage_per_cycle_per_pe",
        ):
            if getattr(self, field_name) < 0:
                raise SimulationError(
                    f"energy cost {field_name} must be >= 0"
                )


DEFAULT_ENERGY_TABLE = EnergyTable()


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy per component, in MAC-units."""

    compute: float
    distribution: float
    reduction: float
    buffers: float
    accumulation: float
    leakage: float

    @property
    def total(self) -> float:
        return (
            self.compute + self.distribution + self.reduction
            + self.buffers + self.accumulation + self.leakage
        )

    def summary(self) -> str:
        parts = [
            ("compute", self.compute),
            ("distribution", self.distribution),
            ("reduction", self.reduction),
            ("buffers", self.buffers),
            ("accumulation", self.accumulation),
            ("leakage", self.leakage),
        ]
        total = self.total
        cells = ", ".join(
            f"{name} {value / total:.0%}" for name, value in parts if total
        )
        return f"{total:,.0f} MAC-units ({cells})"


def estimate_energy(
    stats: SimulationStats,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
) -> EnergyBreakdown:
    """Energy of a simulated execution from its event counts.

    Works for any controller: the traffic breakdown and cycle count in
    :class:`SimulationStats` are the complete event record the model
    needs.  Partial-sum traffic is charged once through the reduction
    network and once as an accumulator read-modify-write; final outputs
    are buffer writes.
    """
    traffic = stats.traffic
    compute = table.mac * stats.macs
    distribution = table.dn_transfer * traffic.distribution_total
    reduction = table.rn_transfer * traffic.psums_reduced
    buffers = table.buffer_read * traffic.distribution_total + (
        table.buffer_write * traffic.outputs_written
    )
    accumulation = table.accumulator_rmw * max(
        0, traffic.psums_reduced - traffic.outputs_written
    )
    leakage = table.leakage_per_cycle_per_pe * stats.cycles * stats.array_size
    return EnergyBreakdown(
        compute=compute,
        distribution=distribution,
        reduction=reduction,
        buffers=buffers,
        accumulation=accumulation,
        leakage=leakage,
    )


def attach_energy(
    stats: SimulationStats,
    table: EnergyTable = DEFAULT_ENERGY_TABLE,
) -> SimulationStats:
    """Fill ``stats.energy`` in place and return the record."""
    stats.energy = estimate_energy(stats, table).total
    return stats
