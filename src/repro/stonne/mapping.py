"""Dataflow mappings (tile configurations) for reconfigurable accelerators.

A *mapping* is a specific instance of a dataflow (§II of the paper):

* :class:`ConvMapping` carries the eight conv tiles of Table IV
  (``T_R, T_S, T_C, T_K, T_G, T_N, T_X, T_Y``);
* :class:`FcMapping` carries the three fully connected tiles of Table V
  (``T_S, T_K, T_N``).

The *virtual neuron* (VN) is the group of multipliers that spatially
reduces one output: its size is ``T_R*T_S*T_C`` for convolutions and
``T_K`` for dense layers.  A mapping is valid for a given accelerator when
``vn_size * num_vns`` fits in the multiplier array and every tile divides
into (i.e. does not exceed) the corresponding layer dimension.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Iterator, Sequence, Tuple

from repro.errors import MappingError
from repro.stonne.layer import ConvLayer, FcLayer, ceil_div


def _check_tile(name: str, value: int) -> None:
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise MappingError(f"tile {name} must be an integer >= 1, got {value!r}")


@dataclass(frozen=True)
class ConvMapping:
    """Tile configuration for a convolution on MAERI (Table IV)."""

    T_R: int = 1
    T_S: int = 1
    T_C: int = 1
    T_K: int = 1
    T_G: int = 1
    T_N: int = 1
    T_X: int = 1
    T_Y: int = 1

    def __post_init__(self) -> None:
        for name in ("T_R", "T_S", "T_C", "T_K", "T_G", "T_N", "T_X", "T_Y"):
            _check_tile(name, getattr(self, name))
        if self.T_N != 1:
            raise MappingError(f"STONNE supports only T_N=1, got T_N={self.T_N}")

    @property
    def vn_size(self) -> int:
        """Multipliers per virtual neuron (spatial reduction width)."""
        return self.T_R * self.T_S * self.T_C

    @property
    def num_vns(self) -> int:
        """Virtual neurons mapped simultaneously (output parallelism)."""
        return self.T_K * self.T_G * self.T_N * self.T_X * self.T_Y

    @property
    def multipliers_used(self) -> int:
        return self.vn_size * self.num_vns

    def validate_for(self, layer: ConvLayer, ms_size: int) -> None:
        """Raise :class:`MappingError` unless this mapping fits layer+array."""
        used = self.multipliers_used
        if used > ms_size:
            raise MappingError(
                f"mapping needs {used} multipliers but the array has {ms_size} "
                f"(vn_size={self.vn_size}, num_vns={self.num_vns})"
            )
        bounds = {
            "T_R": layer.R,
            "T_S": layer.S,
            "T_C": layer.C // layer.G,
            "T_K": layer.K // layer.G,
            "T_G": layer.G,
            "T_N": layer.N,
            "T_X": layer.P,
            "T_Y": layer.Q,
        }
        for name, bound in bounds.items():
            value = getattr(self, name)
            if value > bound:
                raise MappingError(
                    f"tile {name}={value} exceeds layer dimension {bound} "
                    f"for layer {layer.name!r}"
                )

    def fold_counts(self, layer: ConvLayer) -> Dict[str, int]:
        """Temporal iteration counts along every tiled dimension."""
        return {
            "R": ceil_div(layer.R, self.T_R),
            "S": ceil_div(layer.S, self.T_S),
            "C": ceil_div(layer.C // layer.G, self.T_C),
            "K": ceil_div(layer.K // layer.G, self.T_K),
            "G": ceil_div(layer.G, self.T_G),
            "N": ceil_div(layer.N, self.T_N),
            "X": ceil_div(layer.P, self.T_X),
            "Y": ceil_div(layer.Q, self.T_Y),
        }

    def iterations(self, layer: ConvLayer) -> int:
        """Total tile iterations needed to cover the layer."""
        total = 1
        for count in self.fold_counts(layer).values():
            total *= count
        return total

    def reduction_folds(self, layer: ConvLayer) -> int:
        """Temporal folds along the *reduction* dimensions (R, S, C).

        Each fold beyond the first means every output is accumulated
        read-modify-write through the accumulation buffer.
        """
        folds = self.fold_counts(layer)
        return folds["R"] * folds["S"] * folds["C"]

    def as_tuple(self) -> Tuple[int, ...]:
        return (
            self.T_R, self.T_S, self.T_C, self.T_K,
            self.T_G, self.T_N, self.T_X, self.T_Y,
        )

    def with_updates(self, **kwargs: int) -> "ConvMapping":
        return replace(self, **kwargs)

    @classmethod
    def basic(cls) -> "ConvMapping":
        """The unoptimized default mapping Bifrost generates (all tiles 1)."""
        return cls()


@dataclass(frozen=True)
class FcMapping:
    """Tile configuration for a dense layer on MAERI (Table V).

    ``T_S`` output neurons and ``T_N`` batches are mapped in parallel
    (``num_vns = T_S * T_N``); ``T_K`` input neurons are reduced spatially
    inside each virtual neuron (``vn_size = T_K``).
    """

    T_S: int = 1
    T_K: int = 1
    T_N: int = 1

    def __post_init__(self) -> None:
        for name in ("T_S", "T_K", "T_N"):
            _check_tile(name, getattr(self, name))

    @property
    def vn_size(self) -> int:
        return self.T_K

    @property
    def num_vns(self) -> int:
        return self.T_S * self.T_N

    @property
    def multipliers_used(self) -> int:
        return self.vn_size * self.num_vns

    def validate_for(self, layer: FcLayer, ms_size: int) -> None:
        used = self.multipliers_used
        if used > ms_size:
            raise MappingError(
                f"mapping needs {used} multipliers but the array has {ms_size} "
                f"(T_S={self.T_S}, T_K={self.T_K}, T_N={self.T_N})"
            )
        if self.T_S > layer.out_features:
            raise MappingError(
                f"T_S={self.T_S} exceeds out_features={layer.out_features} "
                f"for layer {layer.name!r}"
            )
        if self.T_K > layer.in_features:
            raise MappingError(
                f"T_K={self.T_K} exceeds in_features={layer.in_features} "
                f"for layer {layer.name!r}"
            )
        if self.T_N > layer.batch:
            raise MappingError(
                f"T_N={self.T_N} exceeds batch={layer.batch} "
                f"for layer {layer.name!r}"
            )

    def fold_counts(self, layer: FcLayer) -> Dict[str, int]:
        return {
            "S": ceil_div(layer.out_features, self.T_S),
            "K": ceil_div(layer.in_features, self.T_K),
            "N": ceil_div(layer.batch, self.T_N),
        }

    def iterations(self, layer: FcLayer) -> int:
        folds = self.fold_counts(layer)
        return folds["S"] * folds["K"] * folds["N"]

    def reduction_folds(self, layer: FcLayer) -> int:
        """Temporal folds along the reduction (input-neuron) dimension."""
        return ceil_div(layer.in_features, self.T_K)

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.T_S, self.T_K, self.T_N)

    def with_updates(self, **kwargs: int) -> "FcMapping":
        return replace(self, **kwargs)

    @classmethod
    def basic(cls) -> "FcMapping":
        """The unoptimized default mapping (1, 1, 1)."""
        return cls()


# ----------------------------------------------------------------------
# batch-kernel helpers (vectorized packing and validation)
# ----------------------------------------------------------------------
def pack_conv_mappings(mappings: Sequence[ConvMapping]):
    """Pack conv mappings into an ``(N, 8)`` int64 array (as_tuple order)."""
    import numpy as np

    return np.array([m.as_tuple() for m in mappings], dtype=np.int64).reshape(
        len(mappings), 8
    )


def pack_fc_mappings(mappings: Sequence[FcMapping]):
    """Pack FC mappings into an ``(N, 3)`` int64 array (as_tuple order)."""
    import numpy as np

    return np.array([m.as_tuple() for m in mappings], dtype=np.int64).reshape(
        len(mappings), 3
    )


def conv_batch_invalid(layer: ConvLayer, tiles, ms_size: int):
    """Vectorized :meth:`ConvMapping.validate_for`: True where invalid.

    ``tiles`` is an ``(N, 8)`` array from :func:`pack_conv_mappings`.
    The mask marks exactly the rows whose scalar validation would raise
    (capacity first, then per-tile layer bounds); callers report each
    flagged row through the scalar path so messages stay identical.
    """
    import numpy as np

    # Capacity in float64: products of eight int64 columns can wrap, and
    # the comparison is exact anyway (any product above 2**53 dwarfs any
    # real ms_size; below that float64 is exact).
    used = tiles.astype(np.float64).prod(axis=1)
    bad = used > ms_size
    bounds = (
        layer.R, layer.S, layer.C // layer.G, layer.K // layer.G,
        layer.G, layer.N, layer.P, layer.Q,
    )
    for column, bound in zip(tiles.T, bounds):
        bad = bad | (column > bound)
    return bad


def fc_batch_invalid(layer: FcLayer, tiles, ms_size: int):
    """Vectorized :meth:`FcMapping.validate_for`: True where invalid.

    ``tiles`` is an ``(N, 3)`` array from :func:`pack_fc_mappings`.
    """
    import numpy as np

    t_s, t_k, t_n = tiles.T
    used = tiles.astype(np.float64).prod(axis=1)
    return (
        (used > ms_size)
        | (t_s > layer.out_features)
        | (t_k > layer.in_features)
        | (t_n > layer.batch)
    )


def enumerate_conv_mappings(
    layer: ConvLayer, ms_size: int, max_tile_options: int = 0
) -> Iterator[ConvMapping]:
    """Yield every valid conv mapping for ``layer`` on an array of ``ms_size``.

    The space enumerates each tile from 1 up to its layer bound, pruned by
    the multiplier capacity as soon as partial products exceed it.  When
    ``max_tile_options`` is positive, each dimension is subsampled to at
    most that many values (the paper's "each tile has 10 options"), which
    keeps exhaustive searches tractable.
    """

    def options(bound: int) -> list:
        values = list(range(1, bound + 1))
        if max_tile_options and len(values) > max_tile_options:
            step = len(values) / max_tile_options
            picked = sorted({values[int(i * step)] for i in range(max_tile_options)})
            if bound not in picked:
                picked.append(bound)
            values = picked
        return values

    r_opts = options(layer.R)
    s_opts = options(layer.S)
    c_opts = options(layer.C // layer.G)
    k_opts = options(layer.K // layer.G)
    x_opts = options(layer.P)
    y_opts = options(layer.Q)

    for t_r in r_opts:
        if t_r > ms_size:
            break
        for t_s in s_opts:
            if t_r * t_s > ms_size:
                break
            for t_c in c_opts:
                vn = t_r * t_s * t_c
                if vn > ms_size:
                    break
                for t_k in k_opts:
                    if vn * t_k > ms_size:
                        break
                    for t_x in x_opts:
                        if vn * t_k * t_x > ms_size:
                            break
                        for t_y in y_opts:
                            if vn * t_k * t_x * t_y > ms_size:
                                break
                            yield ConvMapping(
                                T_R=t_r, T_S=t_s, T_C=t_c, T_K=t_k,
                                T_X=t_x, T_Y=t_y,
                            )


def enumerate_fc_mappings(layer: FcLayer, ms_size: int) -> Iterator[FcMapping]:
    """Yield every valid FC mapping for ``layer`` on an array of ``ms_size``."""
    s_bound = min(layer.out_features, ms_size)
    for t_s in range(1, s_bound + 1):
        k_bound = min(layer.in_features, ms_size // t_s)
        for t_k in range(1, k_bound + 1):
            yield FcMapping(T_S=t_s, T_K=t_k, T_N=1)
