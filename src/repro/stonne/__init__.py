"""Cycle-level simulator for reconfigurable DNN accelerators (STONNE stand-in).

Public surface:

* configuration — :class:`SimulatorConfig` and the :func:`maeri_config`,
  :func:`sigma_config`, :func:`tpu_config` helpers (paper Table III);
* workloads — :class:`ConvLayer`, :class:`FcLayer`, :class:`GemmLayer`
  (paper Table II);
* mappings — :class:`ConvMapping`, :class:`FcMapping` (paper Tables IV/V);
* execution — :class:`Stonne` returning :class:`SimulationStats`.
"""

from repro.stonne.config import (
    ControllerType,
    MsNetworkType,
    ReduceNetworkType,
    SimulatorConfig,
    maeri_config,
    magma_config,
    sigma_config,
    tpu_config,
)
from repro.stonne.controller import (
    AcceleratorController,
    controller_class,
    make_controller,
    register_controller,
    registered_controller_types,
    unregister_controller,
)
from repro.stonne.magma import MagmaController
from repro.stonne.energy import (
    DEFAULT_ENERGY_TABLE,
    EnergyBreakdown,
    EnergyTable,
    attach_energy,
    estimate_energy,
)
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer, ceil_div
from repro.stonne.mapping import (
    ConvMapping,
    FcMapping,
    enumerate_conv_mappings,
    enumerate_fc_mappings,
)
from repro.stonne.maeri import MaeriController
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.sigma import SigmaController
from repro.stonne.simulator import SimulationResult, Stonne
from repro.stonne.sparsity import BitmapTensor, measured_sparsity, prune_to_sparsity
from repro.stonne.stats import SimulationStats, TrafficBreakdown, combine_stats
from repro.stonne.tpu import TpuController

__all__ = [
    "AcceleratorController",
    "BitmapTensor",
    "controller_class",
    "make_controller",
    "register_controller",
    "registered_controller_types",
    "unregister_controller",
    "DEFAULT_ENERGY_TABLE",
    "EnergyBreakdown",
    "EnergyTable",
    "attach_energy",
    "estimate_energy",
    "ControllerType",
    "ConvLayer",
    "ConvMapping",
    "CycleModelParams",
    "DEFAULT_PARAMS",
    "FcLayer",
    "FcMapping",
    "GemmLayer",
    "MaeriController",
    "MagmaController",
    "magma_config",
    "MsNetworkType",
    "ReduceNetworkType",
    "SigmaController",
    "SimulationResult",
    "SimulationStats",
    "SimulatorConfig",
    "Stonne",
    "TpuController",
    "TrafficBreakdown",
    "ceil_div",
    "combine_stats",
    "enumerate_conv_mappings",
    "enumerate_fc_mappings",
    "maeri_config",
    "measured_sparsity",
    "prune_to_sparsity",
    "sigma_config",
    "tpu_config",
]
