"""Reduction network models.

Three fabrics from STONNE (Table III):

* :class:`ARTNetwork` (``ASNETWORK``) — MAERI's Augmented Reduction Tree: a
  fat tree of adder switches that can be partitioned into independent
  sub-trees, one per virtual neuron.  Spatial reduction of a VN of size
  ``v`` is pipelined with depth ``ceil(log2(v))``.
* :class:`FENetwork` (``FENETWORK``) — the STIFT-style forwarding fabric
  SIGMA uses; functionally equivalent for our purposes but with a
  forwarding-adder latency of 1 regardless of VN size (spatio-temporal
  reduction), at the cost of one extra psum forward per level.
* :class:`TemporalRN` (``TEMPORALRN``) — no spatial adders at all; every
  partial sum is accumulated temporally in the accumulation buffer.  Rigid
  architectures (the TPU) use this.

All three expose the same interface so the engine is fabric-agnostic:
``cycles_to_collect`` (port bandwidth), ``reduction_latency`` (pipeline
fill) and ``spatial_psums`` (the psum counter contribution).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.stonne.layer import ceil_div


@dataclass(frozen=True)
class ReductionNetworkBase:
    """Shared behaviour: a bandwidth-limited collection port.

    Args:
        bandwidth: Output elements accepted per cycle (``rn_bw``).
        rmw_occupancy: Port slots a *partial* output occupies (the
            accumulation-buffer read-modify-write round trip).
    """

    bandwidth: int
    rmw_occupancy: int = 3

    def __post_init__(self) -> None:
        if self.bandwidth < 1:
            raise SimulationError(f"rn bandwidth must be >= 1, got {self.bandwidth}")
        if self.rmw_occupancy < 1:
            raise SimulationError(
                f"rmw occupancy must be >= 1, got {self.rmw_occupancy}"
            )

    def cycles_to_collect(self, outputs: int, partial: bool) -> int:
        """Steady-state cycles to drain ``outputs`` results.

        Partial outputs (``partial=True``) cost ``rmw_occupancy`` slots each
        because they must be read from, added to and written back into the
        accumulation buffer; final outputs stream straight to the buffer.
        """
        if outputs < 0:
            raise SimulationError(f"cannot collect a negative output count: {outputs}")
        if outputs == 0:
            return 0
        occupancy = self.rmw_occupancy if partial else 1
        return ceil_div(outputs * occupancy, self.bandwidth)

    # Subclasses override the two methods below. ------------------------
    def reduction_latency(self, vn_size: int) -> int:
        raise NotImplementedError

    def reduction_latency_batch(self, vn_sizes):
        """Vectorized :meth:`reduction_latency` over an int array.

        The default loops the scalar method (correct for any subclass);
        the built-in fabrics override it with exact integer array math
        so batch kernels stay bit-identical to the scalar path.
        """
        import numpy as np

        return np.array(
            [self.reduction_latency(int(v)) for v in vn_sizes], dtype=np.int64
        )

    def spatial_psums(self, vn_size: int, num_vns: int) -> int:
        """Partial sums generated *inside* the fabric per iteration."""
        raise NotImplementedError


def _ceil_log2_batch(v):
    """Exact ``ceil(log2(v))`` per element for ``v >= 1``.

    ``frexp`` returns the binary exponent, i.e. the bit length, which is
    exact for any int64 a float64 can represent — unlike a float
    ``ceil(log2(...))`` round trip.  ``ceil(log2(v)) == bit_length(v-1)``.
    """
    import numpy as np

    return np.frexp((v - 1).astype(np.float64))[1].astype(np.int64)


@dataclass(frozen=True)
class ARTNetwork(ReductionNetworkBase):
    """MAERI's augmented reduction tree (``ASNETWORK``)."""

    def reduction_latency(self, vn_size: int) -> int:
        """Adder-tree depth for one virtual neuron (pipeline fill)."""
        if vn_size < 1:
            raise SimulationError(f"vn_size must be >= 1, got {vn_size}")
        return math.ceil(math.log2(vn_size)) if vn_size > 1 else 0

    def reduction_latency_batch(self, vn_sizes):
        import numpy as np

        v = np.asarray(vn_sizes, dtype=np.int64)
        if v.size and int(v.min()) < 1:
            raise SimulationError(f"vn_size must be >= 1, got {int(v.min())}")
        return _ceil_log2_batch(v)

    def spatial_psums(self, vn_size: int, num_vns: int) -> int:
        """A VN of size ``v`` performs ``v - 1`` adds, each emitting a psum."""
        return num_vns * max(0, vn_size - 1)


@dataclass(frozen=True)
class FENetwork(ReductionNetworkBase):
    """STIFT-style forwarding adder network (``FENETWORK``).

    Reduction happens by forwarding psums between neighbouring adders, so
    the latency is linear in the VN size but each hop is a single cheap
    forward; we model latency as ``vn_size - 1`` capped by the tree depth
    the fabric falls back to, and one extra forwarded psum per adder.
    """

    def reduction_latency(self, vn_size: int) -> int:
        if vn_size < 1:
            raise SimulationError(f"vn_size must be >= 1, got {vn_size}")
        if vn_size == 1:
            return 0
        return min(vn_size - 1, 2 * math.ceil(math.log2(vn_size)))

    def reduction_latency_batch(self, vn_sizes):
        import numpy as np

        v = np.asarray(vn_sizes, dtype=np.int64)
        if v.size and int(v.min()) < 1:
            raise SimulationError(f"vn_size must be >= 1, got {int(v.min())}")
        return np.minimum(v - 1, 2 * _ceil_log2_batch(v))

    def spatial_psums(self, vn_size: int, num_vns: int) -> int:
        """Forwarding generates a psum per hop: also ``v - 1`` per VN."""
        return num_vns * max(0, vn_size - 1)


@dataclass(frozen=True)
class TemporalRN(ReductionNetworkBase):
    """Purely temporal reduction (``TEMPORALRN``), used by the TPU.

    There are no spatial adders; every multiplier output is a psum that
    the accumulation buffer folds in place, so the in-fabric latency is
    zero and the spatial psum count is zero (the accumulation writes are
    accounted by the engine instead).
    """

    def reduction_latency(self, vn_size: int) -> int:
        if vn_size != 1:
            raise SimulationError(
                f"TEMPORALRN cannot spatially reduce (vn_size={vn_size})"
            )
        return 0

    def reduction_latency_batch(self, vn_sizes):
        import numpy as np

        v = np.asarray(vn_sizes, dtype=np.int64)
        spatial = v[v != 1]
        if spatial.size:
            raise SimulationError(
                f"TEMPORALRN cannot spatially reduce (vn_size={int(spatial[0])})"
            )
        return np.zeros(v.shape, dtype=np.int64)

    def spatial_psums(self, vn_size: int, num_vns: int) -> int:
        return 0


def make_reduction_network(kind: str, bandwidth: int, rmw_occupancy: int = 3):
    """Factory keyed by the Table III option string."""
    networks = {
        "ASNETWORK": ARTNetwork,
        "FENETWORK": FENetwork,
        "TEMPORALRN": TemporalRN,
    }
    try:
        cls = networks[kind]
    except KeyError:
        raise SimulationError(
            f"unknown reduction network {kind!r}; expected one of {sorted(networks)}"
        ) from None
    return cls(bandwidth=bandwidth, rmw_occupancy=rmw_occupancy)
