"""Simulation statistics reported by the cycle-level models.

:class:`SimulationStats` is the record every controller returns; the two
headline metrics are ``cycles`` (the paper's primary optimization target)
and ``psums`` (the cheap tuning proxy of §VII-B).

psum accounting
---------------
STONNE's psum counter is workload-specific and we mirror that asymmetry
(see DESIGN.md §2.6):

* for **GEMM/FC** workloads, ``psums`` counts partial sums generated inside
  the reduction network — the outputs of the spatial adders, i.e.
  ``(vn_size - 1)`` per virtual neuron per iteration — plus one
  configuration flush per iteration.  Minimizing it drives ``T_K`` to 1 and
  ``T_S`` as large as possible, the exact behaviour Table VI reports.
* for **conv** workloads, ``psums`` counts partial writebacks to the
  accumulation buffer: each output element is written once per temporal
  reduction fold.  Minimizing it maximizes spatial reduction
  (``T_R·T_S·T_C``), which is why psum-guided conv tuning still finds
  strong mappings (§VIII-B).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Dict, Optional


@dataclass
class TrafficBreakdown:
    """Element counts moved through each fabric during a simulation."""

    weights_distributed: int = 0
    inputs_distributed: int = 0
    psums_reduced: int = 0
    outputs_written: int = 0

    @property
    def distribution_total(self) -> int:
        return self.weights_distributed + self.inputs_distributed

    def merged_with(self, other: "TrafficBreakdown") -> "TrafficBreakdown":
        return TrafficBreakdown(
            weights_distributed=self.weights_distributed + other.weights_distributed,
            inputs_distributed=self.inputs_distributed + other.inputs_distributed,
            psums_reduced=self.psums_reduced + other.psums_reduced,
            outputs_written=self.outputs_written + other.outputs_written,
        )


@dataclass
class SimulationStats:
    """The result of simulating one layer on one accelerator configuration.

    Attributes:
        layer_name: Name of the simulated workload.
        controller: Architecture that executed it (config value string).
        cycles: Total simulated clock cycles (deterministic).
        psums: The workload-specific partial-sum count (see module docs).
        macs: Useful multiply-accumulates performed.
        iterations: Tile iterations executed.
        multipliers_used: PEs occupied by the mapping (<= array size).
        utilization: ``macs / (cycles * array_size)`` — fraction of peak.
        traffic: Element counts per fabric.
        phase_cycles: Cycle breakdown by phase name (fill/steady/drain...).
        energy: Reserved; STONNE's energy model was future work at
            publication time, so this is always ``None`` for now.
        area: Reserved, same as ``energy``.
    """

    layer_name: str
    controller: str
    cycles: int
    psums: int
    macs: int
    iterations: int
    multipliers_used: int
    array_size: int
    traffic: TrafficBreakdown = field(default_factory=TrafficBreakdown)
    phase_cycles: Dict[str, int] = field(default_factory=dict)
    energy: Optional[float] = None
    area: Optional[float] = None

    @property
    def utilization(self) -> float:
        """Achieved fraction of the array's peak MAC throughput."""
        if self.cycles <= 0 or self.array_size <= 0:
            return 0.0
        return self.macs / (self.cycles * self.array_size)

    @property
    def macs_per_cycle(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.macs / self.cycles

    def speedup_over(self, baseline: "SimulationStats") -> float:
        """How many times fewer cycles than ``baseline`` this run took."""
        if self.cycles <= 0:
            return float("inf")
        return baseline.cycles / self.cycles

    def clone(self, layer_name: Optional[str] = None) -> "SimulationStats":
        """An independent copy (nested records included), optionally renamed.

        Cheaper than ``copy.deepcopy`` by an order of magnitude, which
        matters on the engine cache's hit path.  Built on
        :func:`dataclasses.replace` so fields added later are copied
        without this method needing to know about them.
        """
        return replace(
            self,
            layer_name=self.layer_name if layer_name is None else layer_name,
            traffic=replace(self.traffic),
            phase_cycles=dict(self.phase_cycles),
        )

    def repeated(self, count: int, layer_name: Optional[str] = None) -> "SimulationStats":
        """Stats for ``count`` back-to-back runs of this exact simulation.

        This is how batch-N workloads are modelled: STONNE executes one
        batch element at a time, and the cycle models are deterministic,
        so N sequential simulations are N identical copies.  Additive
        quantities (cycles, psums, MACs, iterations, traffic, per-phase
        cycles, energy) sum; occupancy quantities (multipliers used,
        array size) take the maximum — which for identical runs is the
        single-run value.
        """
        if count < 1:
            raise ValueError(f"repeat count must be >= 1, got {count}")
        name = self.layer_name if layer_name is None else layer_name
        if count == 1:
            return self.clone(layer_name=name)
        return replace(
            self,
            layer_name=name,
            cycles=self.cycles * count,
            psums=self.psums * count,
            macs=self.macs * count,
            iterations=self.iterations * count,
            traffic=TrafficBreakdown(
                weights_distributed=self.traffic.weights_distributed * count,
                inputs_distributed=self.traffic.inputs_distributed * count,
                psums_reduced=self.traffic.psums_reduced * count,
                outputs_written=self.traffic.outputs_written * count,
            ),
            phase_cycles={k: v * count for k, v in self.phase_cycles.items()},
            energy=None if self.energy is None else self.energy * count,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "layer_name": self.layer_name,
            "controller": self.controller,
            "cycles": self.cycles,
            "psums": self.psums,
            "macs": self.macs,
            "iterations": self.iterations,
            "multipliers_used": self.multipliers_used,
            "array_size": self.array_size,
            "utilization": self.utilization,
            "traffic": {
                "weights_distributed": self.traffic.weights_distributed,
                "inputs_distributed": self.traffic.inputs_distributed,
                "psums_reduced": self.traffic.psums_reduced,
                "outputs_written": self.traffic.outputs_written,
            },
            "phase_cycles": dict(self.phase_cycles),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimulationStats":
        """Rebuild a record from :meth:`to_dict` output (persistence).

        Derived fields (``utilization``) and unknown keys are ignored, so
        records written by older/newer versions still load.
        """
        known = {f.name for f in fields(cls)}
        payload = {k: v for k, v in data.items() if k in known}
        traffic = payload.get("traffic")
        if isinstance(traffic, dict):
            payload["traffic"] = TrafficBreakdown(**traffic)
        return cls(**payload)

    def summary(self) -> str:
        return (
            f"{self.layer_name} on {self.controller}: {self.cycles:,} cycles, "
            f"{self.psums:,} psums, {self.macs:,} MACs, "
            f"utilization {self.utilization:.1%}"
        )


def combine_stats(name: str, parts: list) -> SimulationStats:
    """Aggregate per-layer stats into a whole-model record.

    Cycles, psums, MACs, iterations and traffic add; the array size and
    controller are taken from the first part (they must all match).
    """
    if not parts:
        raise ValueError("combine_stats needs at least one SimulationStats")
    first = parts[0]
    traffic = TrafficBreakdown()
    phase: Dict[str, int] = {}
    cycles = psums = macs = iterations = 0
    used = 0
    for part in parts:
        if part.controller != first.controller:
            raise ValueError(
                f"cannot combine stats across controllers "
                f"({part.controller} != {first.controller})"
            )
        cycles += part.cycles
        psums += part.psums
        macs += part.macs
        iterations += part.iterations
        used = max(used, part.multipliers_used)
        traffic = traffic.merged_with(part.traffic)
        for key, value in part.phase_cycles.items():
            phase[key] = phase.get(key, 0) + value
    return SimulationStats(
        layer_name=name,
        controller=first.controller,
        cycles=cycles,
        psums=psums,
        macs=macs,
        iterations=iterations,
        multipliers_used=used,
        array_size=first.array_size,
        traffic=traffic,
        phase_cycles=phase,
    )
