"""SIGMA controller: cycle-level model of the sparse GEMM fabric.

SIGMA [Qin et al., HPCA'20] is a sparse-and-irregular GEMM accelerator:
non-zero weights are held stationary across a flexible (Benes-routed)
multiplier array, inputs stream through, and a forwarding adder network
(FAN) reduces irregular groups.  Crucially, *the memory controller tiles
the matrix automatically depending on the level of sparsity* (§V-A of the
Bifrost paper) — there is no user-provided mapping.

Model structure (DESIGN.md §3):

* the reduction dimension ``K`` is tiled into *position folds* of
  ``ms_size`` K-positions each — fold boundaries are positional, so the
  fold count (and hence psum accumulation traffic) does not shrink with
  sparsity;
* compute retires ``(1 - sparsity)`` of the MACs at one MAC per PE per
  cycle (zero operands are skipped entirely);
* weight streaming moves only the non-zeros through the distribution
  network, but at high bitmap density the Benes routing heuristics
  congest: effective bandwidth is derated by
  ``1 - dense_routing_loss * density**4`` (dense GEMMs sustain ~82 % of
  peak, nearly-sparse ones the full bandwidth);
* psum writebacks pay the accumulation read-modify-write occupancy at the
  reduction port, identically to MAERI;
* every fold pays a bitmap-decode overhead, and the layer pays a fixed
  warm-up/flush.

These ingredients reproduce Figure 9's asymmetry: FC layers (weight-bound,
``N = 1``) save *more* than the sparsity fraction (~54 % at 50 %), while
convolutions (compute-bound after im2col, with a dense input matrix that
sparsity cannot shrink) save less (~44 %).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Union

from repro.errors import ConfigError
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.controller import (
    AcceleratorController,
    _FLOAT_EXACT,
    _INT64_SAFE,
    _lowered_gemm_batch,
    register_controller,
)
from repro.stonne.distribution import DistributionNetwork
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer, ceil_div
from repro.stonne.multiplier import LinearMultiplierNetwork
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.reduction import make_reduction_network
from repro.stonne.stats import SimulationStats, TrafficBreakdown

#: Fraction of distribution bandwidth lost to Benes routing congestion on a
#: fully dense bitmap (see module docstring).
DENSE_ROUTING_LOSS = 0.18


@register_controller(ControllerType.SIGMA_SPARSE_GEMM)
class SigmaController(AcceleratorController):
    """Simulates GEMM workloads (and im2col-lowered conv/dense) on SIGMA."""

    consumes_sparsity = True

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        if config.controller_type is not ControllerType.SIGMA_SPARSE_GEMM:
            raise ConfigError(
                f"SigmaController requires a SIGMA config, got "
                f"{config.controller_type.value}"
            )
        self.config = config
        self.params = params
        self.multipliers = LinearMultiplierNetwork(size=config.ms_size)
        self.distribution = DistributionNetwork(
            bandwidth=config.dn_bw, fanout=config.ms_size
        )
        self.reduction = make_reduction_network(
            config.reduce_network_type.value,
            bandwidth=config.rn_bw,
            rmw_occupancy=params.rmw_occupancy,
        )

    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Fraction of non-zero weights, from the configured sparsity."""
        return 1.0 - self.config.sparsity_ratio / 100.0

    def _effective_dn_bandwidth(self) -> float:
        """Distribution bandwidth after Benes routing derate."""
        derate = 1.0 - DENSE_ROUTING_LOSS * self.density ** 4
        return self.config.dn_bw * derate

    def position_folds(self, reduction_length: int) -> int:
        """K-dimension folds; positional, hence sparsity-invariant."""
        return ceil_div(reduction_length, self.config.ms_size)

    # ------------------------------------------------------------------
    def run_gemm(self, gemm: GemmLayer) -> SimulationStats:
        """Simulate ``(M x K) @ (K x N)`` at the configured sparsity."""
        density = self.density
        ms = self.config.ms_size
        params = self.params

        total_macs = gemm.macs
        effective_macs = int(round(total_macs * density))
        nnz_weights = int(round(gemm.M * gemm.K * density))
        folds = self.position_folds(gemm.K)
        outputs = gemm.output_elements
        psum_writes = outputs * folds

        compute_cycles = ceil_div(max(effective_macs, 1), ms)
        weight_cycles = int(round(nnz_weights / self._effective_dn_bandwidth())) + 1
        input_cycles = self.distribution.cycles_to_distribute(gemm.K * gemm.N)
        # Weight streaming overlaps with compute; inputs stream alongside
        # whichever of the two dominates.
        stream_cycles = max(compute_cycles, weight_cycles) + input_cycles

        psum_cycles = self.reduction.cycles_to_collect(psum_writes, partial=True)
        decode_cycles = params.sigma_bitmap_decode * folds
        fixed = params.sigma_fixed_overhead

        cycles = stream_cycles + psum_cycles + decode_cycles + fixed

        traffic = TrafficBreakdown(
            weights_distributed=nnz_weights,
            inputs_distributed=gemm.K * gemm.N,
            psums_reduced=psum_writes,
            outputs_written=outputs,
        )
        return SimulationStats(
            layer_name=gemm.name,
            controller=self.config.controller_type.value,
            cycles=cycles,
            psums=psum_writes,
            macs=effective_macs,
            iterations=folds * gemm.M,
            multipliers_used=min(ms, nnz_weights) if nnz_weights else 1,
            array_size=ms,
            traffic=traffic,
            phase_cycles={
                "stream": stream_cycles,
                "psum": psum_cycles,
                "decode": decode_cycles,
                "fixed": fixed,
            },
        )

    def run_conv(self, layer: ConvLayer, mapping=None) -> SimulationStats:
        """Convolution via the GEMM-convolution primitive (§V-B2).

        ``mapping`` is accepted for surface uniformity and ignored: the
        memory controller tiles the matrix automatically (§V-A).

        SIGMA has no native conv support; Bifrost lowers the layer with
        im2col and multiplies ``weight x data`` (NCHW) — the input matrix
        is dense regardless of weight sparsity, which is why conv savings
        trail the sparsity fraction.
        """
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats

    def run_fc(self, layer: FcLayer, mapping=None) -> SimulationStats:
        """Dense layer as a native sparse GEMM (``mapping`` ignored)."""
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats

    # ------------------------------------------------------------------
    # batch kernels (see AcceleratorController contract)
    # ------------------------------------------------------------------
    def run_conv_batch(self, layer, mappings):
        return _lowered_gemm_batch(self, layer, mappings)

    def run_fc_batch(self, layer, mappings):
        return _lowered_gemm_batch(self, layer, mappings)

    def run_gemm_batch(
        self, gemms: Sequence[GemmLayer]
    ) -> List[Union[SimulationStats, Exception]]:
        """One numpy pass over heterogeneous GEMMs, bit-identical to
        :meth:`run_gemm` (the float rounding steps are replicated exactly;
        rows at float-precision or int64 limits replay through it)."""
        import numpy as np

        results: List[Union[SimulationStats, Exception]] = [None] * len(gemms)
        if not gemms:
            return results
        try:
            dims = np.array(
                [(g.M, g.K, g.N) for g in gemms], dtype=np.int64
            ).reshape(len(gemms), 3)
        except OverflowError:
            return super().run_gemm_batch(gemms)

        m, k, n = dims.T
        mf, kf, nf = dims.astype(np.float64).T
        occ = self.reduction.rmw_occupancy
        bad = (m < 1) | (k < 1) | (n < 1)
        bad |= mf * kf > _FLOAT_EXACT
        bad |= mf * kf * nf > _FLOAT_EXACT
        bad |= mf * nf * np.maximum(kf, 1.0) * (occ + 2) > _INT64_SAFE / 16.0
        for row in np.flatnonzero(bad).tolist():
            try:
                results[row] = self.run_gemm(gemms[row])
            except Exception as exc:
                results[row] = exc
        ok = np.flatnonzero(~bad)
        if not ok.size:
            return results

        m, k, n = m[ok], k[ok], n[ok]
        mf, kf, nf = mf[ok], kf[ok], nf[ok]
        density = self.density
        ms = self.config.ms_size
        params = self.params

        effective_macs = np.round(mf * kf * nf * density).astype(np.int64)
        nnz = np.round(mf * kf * density).astype(np.int64)
        folds = -(-k // ms)
        outputs = m * n
        psum_writes = outputs * folds

        compute = -(-np.maximum(effective_macs, 1) // ms)
        weight_cycles = (
            np.round(nnz.astype(np.float64) / self._effective_dn_bandwidth())
            .astype(np.int64)
            + 1
        )
        input_cycles = -(-(k * n) // self.config.dn_bw)
        stream = np.maximum(compute, weight_cycles) + input_cycles
        psum_cycles = -(-(psum_writes * occ) // self.config.rn_bw)
        decode = params.sigma_bitmap_decode * folds
        fixed = params.sigma_fixed_overhead
        cycles = stream + psum_cycles + decode + fixed
        used = np.where(nnz == 0, 1, np.minimum(ms, nnz))

        ctrl = self.config.controller_type.value
        cyc_l = cycles.tolist()
        psum_l = psum_writes.tolist()
        macs_l = effective_macs.tolist()
        iter_l = (folds * m).tolist()
        used_l = used.tolist()
        nnz_l = nnz.tolist()
        kn_l = (k * n).tolist()
        out_l = outputs.tolist()
        stream_l = stream.tolist()
        psumc_l = psum_cycles.tolist()
        decode_l = decode.tolist()
        for pos, row in enumerate(ok.tolist()):
            results[row] = SimulationStats(
                layer_name=gemms[row].name,
                controller=ctrl,
                cycles=cyc_l[pos],
                psums=psum_l[pos],
                macs=macs_l[pos],
                iterations=iter_l[pos],
                multipliers_used=used_l[pos],
                array_size=ms,
                traffic=TrafficBreakdown(
                    weights_distributed=nnz_l[pos],
                    inputs_distributed=kn_l[pos],
                    psums_reduced=psum_l[pos],
                    outputs_written=out_l[pos],
                ),
                phase_cycles={
                    "stream": stream_l[pos],
                    "psum": psumc_l[pos],
                    "decode": decode_l[pos],
                    "fixed": fixed,
                },
            )
        return results
