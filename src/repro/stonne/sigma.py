"""SIGMA controller: cycle-level model of the sparse GEMM fabric.

SIGMA [Qin et al., HPCA'20] is a sparse-and-irregular GEMM accelerator:
non-zero weights are held stationary across a flexible (Benes-routed)
multiplier array, inputs stream through, and a forwarding adder network
(FAN) reduces irregular groups.  Crucially, *the memory controller tiles
the matrix automatically depending on the level of sparsity* (§V-A of the
Bifrost paper) — there is no user-provided mapping.

Model structure (DESIGN.md §3):

* the reduction dimension ``K`` is tiled into *position folds* of
  ``ms_size`` K-positions each — fold boundaries are positional, so the
  fold count (and hence psum accumulation traffic) does not shrink with
  sparsity;
* compute retires ``(1 - sparsity)`` of the MACs at one MAC per PE per
  cycle (zero operands are skipped entirely);
* weight streaming moves only the non-zeros through the distribution
  network, but at high bitmap density the Benes routing heuristics
  congest: effective bandwidth is derated by
  ``1 - dense_routing_loss * density**4`` (dense GEMMs sustain ~82 % of
  peak, nearly-sparse ones the full bandwidth);
* psum writebacks pay the accumulation read-modify-write occupancy at the
  reduction port, identically to MAERI;
* every fold pays a bitmap-decode overhead, and the layer pays a fixed
  warm-up/flush.

These ingredients reproduce Figure 9's asymmetry: FC layers (weight-bound,
``N = 1``) save *more* than the sparsity fraction (~54 % at 50 %), while
convolutions (compute-bound after im2col, with a dense input matrix that
sparsity cannot shrink) save less (~44 %).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.controller import AcceleratorController, register_controller
from repro.stonne.distribution import DistributionNetwork
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer, ceil_div
from repro.stonne.multiplier import LinearMultiplierNetwork
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.reduction import make_reduction_network
from repro.stonne.stats import SimulationStats, TrafficBreakdown

#: Fraction of distribution bandwidth lost to Benes routing congestion on a
#: fully dense bitmap (see module docstring).
DENSE_ROUTING_LOSS = 0.18


@register_controller(ControllerType.SIGMA_SPARSE_GEMM)
class SigmaController(AcceleratorController):
    """Simulates GEMM workloads (and im2col-lowered conv/dense) on SIGMA."""

    consumes_sparsity = True

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        if config.controller_type is not ControllerType.SIGMA_SPARSE_GEMM:
            raise ConfigError(
                f"SigmaController requires a SIGMA config, got "
                f"{config.controller_type.value}"
            )
        self.config = config
        self.params = params
        self.multipliers = LinearMultiplierNetwork(size=config.ms_size)
        self.distribution = DistributionNetwork(
            bandwidth=config.dn_bw, fanout=config.ms_size
        )
        self.reduction = make_reduction_network(
            config.reduce_network_type.value,
            bandwidth=config.rn_bw,
            rmw_occupancy=params.rmw_occupancy,
        )

    # ------------------------------------------------------------------
    @property
    def density(self) -> float:
        """Fraction of non-zero weights, from the configured sparsity."""
        return 1.0 - self.config.sparsity_ratio / 100.0

    def _effective_dn_bandwidth(self) -> float:
        """Distribution bandwidth after Benes routing derate."""
        derate = 1.0 - DENSE_ROUTING_LOSS * self.density ** 4
        return self.config.dn_bw * derate

    def position_folds(self, reduction_length: int) -> int:
        """K-dimension folds; positional, hence sparsity-invariant."""
        return ceil_div(reduction_length, self.config.ms_size)

    # ------------------------------------------------------------------
    def run_gemm(self, gemm: GemmLayer) -> SimulationStats:
        """Simulate ``(M x K) @ (K x N)`` at the configured sparsity."""
        density = self.density
        ms = self.config.ms_size
        params = self.params

        total_macs = gemm.macs
        effective_macs = int(round(total_macs * density))
        nnz_weights = int(round(gemm.M * gemm.K * density))
        folds = self.position_folds(gemm.K)
        outputs = gemm.output_elements
        psum_writes = outputs * folds

        compute_cycles = ceil_div(max(effective_macs, 1), ms)
        weight_cycles = int(round(nnz_weights / self._effective_dn_bandwidth())) + 1
        input_cycles = self.distribution.cycles_to_distribute(gemm.K * gemm.N)
        # Weight streaming overlaps with compute; inputs stream alongside
        # whichever of the two dominates.
        stream_cycles = max(compute_cycles, weight_cycles) + input_cycles

        psum_cycles = self.reduction.cycles_to_collect(psum_writes, partial=True)
        decode_cycles = params.sigma_bitmap_decode * folds
        fixed = params.sigma_fixed_overhead

        cycles = stream_cycles + psum_cycles + decode_cycles + fixed

        traffic = TrafficBreakdown(
            weights_distributed=nnz_weights,
            inputs_distributed=gemm.K * gemm.N,
            psums_reduced=psum_writes,
            outputs_written=outputs,
        )
        return SimulationStats(
            layer_name=gemm.name,
            controller=self.config.controller_type.value,
            cycles=cycles,
            psums=psum_writes,
            macs=effective_macs,
            iterations=folds * gemm.M,
            multipliers_used=min(ms, nnz_weights) if nnz_weights else 1,
            array_size=ms,
            traffic=traffic,
            phase_cycles={
                "stream": stream_cycles,
                "psum": psum_cycles,
                "decode": decode_cycles,
                "fixed": fixed,
            },
        )

    def run_conv(self, layer: ConvLayer, mapping=None) -> SimulationStats:
        """Convolution via the GEMM-convolution primitive (§V-B2).

        ``mapping`` is accepted for surface uniformity and ignored: the
        memory controller tiles the matrix automatically (§V-A).

        SIGMA has no native conv support; Bifrost lowers the layer with
        im2col and multiplies ``weight x data`` (NCHW) — the input matrix
        is dense regardless of weight sparsity, which is why conv savings
        trail the sparsity fraction.
        """
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats

    def run_fc(self, layer: FcLayer, mapping=None) -> SimulationStats:
        """Dense layer as a native sparse GEMM (``mapping`` ignored)."""
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats
