"""Calibration constants for the cycle-level models.

These constants parameterize the per-iteration cost model described in
DESIGN.md §3.  They are module-level so the ablation benchmarks can vary
them, but production code should treat them as fixed: they were calibrated
once so the reproduced experiments land in the bands the paper reports.

Every constant is documented with the microarchitectural effect it models.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CycleModelParams:
    """Tunable constants of the MAERI/SIGMA/TPU cycle models.

    Attributes:
        rmw_occupancy: Number of reduction-network port slots occupied by a
            *partial* output (read-modify-write against the accumulation
            buffer: read, add, write back).  Final outputs occupy one slot.
        acc_raw_latency: Stall cycles inserted when consecutive tile
            iterations accumulate into the same output elements (a
            read-after-write hazard on the accumulation buffer).
        pipeline_fill_per_level: Cycles of pipeline fill contributed by each
            level of the distribution tree when a new tile configuration is
            loaded (paid once per *fold group*, not per iteration).
        config_cycles: One-off cost of pushing a new signal configuration
            into the distribution/reduction switches when the mapping for a
            layer is (re)loaded.
        sigma_bitmap_decode: Per-tile cycles SIGMA's memory controller spends
            decoding the sparsity bitmap before streaming non-zeros.
        sigma_fixed_overhead: Per-layer fixed cycles for SIGMA (buffer
            warm-up and flush).
        dense_output_drain: Extra cycles per output tile on SIGMA when the
            workload is fully dense, modelling accumulator-bank back
            pressure that sparse tiles avoid.
        tpu_fill_drain_factor: Multiplier on (rows + cols) for the systolic
            fill/drain phases of the TPU mesh.
    """

    rmw_occupancy: int = 3
    acc_raw_latency: int = 2
    pipeline_fill_per_level: int = 1
    config_cycles: int = 10
    sigma_bitmap_decode: int = 2
    sigma_fixed_overhead: int = 64
    dense_output_drain: int = 1
    tpu_fill_drain_factor: int = 1


DEFAULT_PARAMS = CycleModelParams()

#: Default hardware sizing used throughout the paper's experiments.
DEFAULT_MS_SIZE = 128
DEFAULT_DN_BW = 64
DEFAULT_RN_BW = 16
