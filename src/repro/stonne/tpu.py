"""TPU controller: a rigid output-stationary systolic mesh.

The TPU architecture in STONNE is a fixed-dataflow baseline: a
``rows x cols`` output-stationary mesh (``OS_MESH``) with a weight-
stationary schedule inside each tile, a ``TEMPORALRN`` reduction network
(all accumulation is temporal, in place at each PE) and a mandatory
accumulation buffer.  There are no mapping knobs: "since the TPU has a
fixed dataflow architecture, the tiling can not be changed" (§V-A).

Convolutions are lowered to GEMM exactly like SIGMA (§V-B3).  Each output
tile of ``rows x cols`` results costs the classic systolic schedule:
``K + (rows + cols - 2) * fill_drain + 1`` cycles for a reduction of
length ``K``.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.errors import ConfigError
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.controller import (
    AcceleratorController,
    _INT64_SAFE,
    _lowered_gemm_batch,
    register_controller,
)
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer, ceil_div
from repro.stonne.multiplier import OSMeshNetwork
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.stats import SimulationStats, TrafficBreakdown


@register_controller(ControllerType.TPU_OS_DENSE)
class TpuController(AcceleratorController):
    """Simulates GEMM workloads (and lowered conv/dense) on the TPU mesh."""

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        if config.controller_type is not ControllerType.TPU_OS_DENSE:
            raise ConfigError(
                f"TpuController requires a TPU config, got "
                f"{config.controller_type.value}"
            )
        self.config = config
        self.params = params
        self.mesh = OSMeshNetwork(rows=config.ms_rows, cols=config.ms_cols)

    def run_gemm(self, gemm: GemmLayer) -> SimulationStats:
        """Simulate ``(M x K) @ (K x N)`` on the output-stationary mesh."""
        rows, cols = self.mesh.rows, self.mesh.cols
        row_tiles = ceil_div(gemm.M, rows)
        col_tiles = ceil_div(gemm.N, cols)
        tiles = row_tiles * col_tiles

        per_tile = self.mesh.tile_cycles(
            gemm.K, fill_drain_factor=self.params.tpu_fill_drain_factor
        )
        cycles = self.params.config_cycles + tiles * per_tile

        # Temporal reduction: every MAC deposits a psum into its PE's
        # accumulator; the counter reports the per-output accumulations.
        psums = gemm.output_elements * gemm.K

        traffic = TrafficBreakdown(
            weights_distributed=tiles * rows * gemm.K,
            inputs_distributed=tiles * cols * gemm.K,
            psums_reduced=psums,
            outputs_written=gemm.output_elements,
        )
        return SimulationStats(
            layer_name=gemm.name,
            controller=self.config.controller_type.value,
            cycles=cycles,
            psums=psums,
            macs=gemm.macs,
            iterations=tiles,
            multipliers_used=self.mesh.size,
            array_size=self.mesh.size,
            traffic=traffic,
            phase_cycles={"tiles": tiles * per_tile},
        )

    def run_conv(self, layer: ConvLayer, mapping=None) -> SimulationStats:
        """Convolution lowered to GEMM (im2col), as §V-B3 describes.

        ``mapping`` is accepted for surface uniformity and ignored: the
        TPU's dataflow is fixed (§V-A)."""
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats

    def run_fc(self, layer: FcLayer, mapping=None) -> SimulationStats:
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats

    # ------------------------------------------------------------------
    # batch kernels (see AcceleratorController contract)
    # ------------------------------------------------------------------
    def run_conv_batch(self, layer, mappings):
        return _lowered_gemm_batch(self, layer, mappings)

    def run_fc_batch(self, layer, mappings):
        return _lowered_gemm_batch(self, layer, mappings)

    def run_gemm_batch(
        self, gemms: Sequence[GemmLayer]
    ) -> List[Union[SimulationStats, Exception]]:
        """One numpy pass over heterogeneous GEMMs; the model is already
        integer-only, so only int64-overflow rows replay through
        :meth:`run_gemm`."""
        import numpy as np

        results: List[Union[SimulationStats, Exception]] = [None] * len(gemms)
        if not gemms:
            return results
        try:
            dims = np.array(
                [(g.M, g.K, g.N) for g in gemms], dtype=np.int64
            ).reshape(len(gemms), 3)
        except OverflowError:
            return super().run_gemm_batch(gemms)

        rows, cols = self.mesh.rows, self.mesh.cols
        fill_drain = (rows + cols - 2) * self.params.tpu_fill_drain_factor
        m, k, n = dims.T
        mf, kf, nf = dims.astype(np.float64).T
        # Per-dimension tile counts are bounded by the dimensions, so the
        # int64 ceil-divs are safe on every row; products are guarded in
        # float64 before being formed in int64.
        row_tiles = -(-np.maximum(m, 1) // rows)
        col_tiles = -(-np.maximum(n, 1) // cols)
        tiles_f = row_tiles.astype(np.float64) * col_tiles.astype(np.float64)
        per_tile_f = kf + fill_drain + 1.0
        bad = (m < 1) | (k < 1) | (n < 1)
        bad |= tiles_f * per_tile_f > _INT64_SAFE / 16.0
        bad |= mf * nf * np.maximum(kf, 1.0) > _INT64_SAFE / 16.0
        bad |= tiles_f * max(rows, cols) * np.maximum(kf, 1.0) > _INT64_SAFE / 16.0
        for row in np.flatnonzero(bad).tolist():
            try:
                results[row] = self.run_gemm(gemms[row])
            except Exception as exc:
                results[row] = exc
        ok = np.flatnonzero(~bad)
        if not ok.size:
            return results

        m, k, n = m[ok], k[ok], n[ok]
        tiles = row_tiles[ok] * col_tiles[ok]
        per_tile = k + fill_drain + 1
        tile_cycles = tiles * per_tile
        cycles = self.params.config_cycles + tile_cycles
        outputs = m * n
        psums = outputs * k

        ctrl = self.config.controller_type.value
        mesh_size = self.mesh.size
        cyc_l = cycles.tolist()
        psum_l = psums.tolist()
        macs_l = (outputs * k).tolist()
        tiles_l = tiles.tolist()
        wd_l = (tiles * rows * k).tolist()
        id_l = (tiles * cols * k).tolist()
        out_l = outputs.tolist()
        phase_l = tile_cycles.tolist()
        for pos, row in enumerate(ok.tolist()):
            results[row] = SimulationStats(
                layer_name=gemms[row].name,
                controller=ctrl,
                cycles=cyc_l[pos],
                psums=psum_l[pos],
                macs=macs_l[pos],
                iterations=tiles_l[pos],
                multipliers_used=mesh_size,
                array_size=mesh_size,
                traffic=TrafficBreakdown(
                    weights_distributed=wd_l[pos],
                    inputs_distributed=id_l[pos],
                    psums_reduced=psum_l[pos],
                    outputs_written=out_l[pos],
                ),
                phase_cycles={"tiles": phase_l[pos]},
            )
        return results
