"""TPU controller: a rigid output-stationary systolic mesh.

The TPU architecture in STONNE is a fixed-dataflow baseline: a
``rows x cols`` output-stationary mesh (``OS_MESH``) with a weight-
stationary schedule inside each tile, a ``TEMPORALRN`` reduction network
(all accumulation is temporal, in place at each PE) and a mandatory
accumulation buffer.  There are no mapping knobs: "since the TPU has a
fixed dataflow architecture, the tiling can not be changed" (§V-A).

Convolutions are lowered to GEMM exactly like SIGMA (§V-B3).  Each output
tile of ``rows x cols`` results costs the classic systolic schedule:
``K + (rows + cols - 2) * fill_drain + 1`` cycles for a reduction of
length ``K``.
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.controller import AcceleratorController, register_controller
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer, ceil_div
from repro.stonne.multiplier import OSMeshNetwork
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.stats import SimulationStats, TrafficBreakdown


@register_controller(ControllerType.TPU_OS_DENSE)
class TpuController(AcceleratorController):
    """Simulates GEMM workloads (and lowered conv/dense) on the TPU mesh."""

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        if config.controller_type is not ControllerType.TPU_OS_DENSE:
            raise ConfigError(
                f"TpuController requires a TPU config, got "
                f"{config.controller_type.value}"
            )
        self.config = config
        self.params = params
        self.mesh = OSMeshNetwork(rows=config.ms_rows, cols=config.ms_cols)

    def run_gemm(self, gemm: GemmLayer) -> SimulationStats:
        """Simulate ``(M x K) @ (K x N)`` on the output-stationary mesh."""
        rows, cols = self.mesh.rows, self.mesh.cols
        row_tiles = ceil_div(gemm.M, rows)
        col_tiles = ceil_div(gemm.N, cols)
        tiles = row_tiles * col_tiles

        per_tile = self.mesh.tile_cycles(
            gemm.K, fill_drain_factor=self.params.tpu_fill_drain_factor
        )
        cycles = self.params.config_cycles + tiles * per_tile

        # Temporal reduction: every MAC deposits a psum into its PE's
        # accumulator; the counter reports the per-output accumulations.
        psums = gemm.output_elements * gemm.K

        traffic = TrafficBreakdown(
            weights_distributed=tiles * rows * gemm.K,
            inputs_distributed=tiles * cols * gemm.K,
            psums_reduced=psums,
            outputs_written=gemm.output_elements,
        )
        return SimulationStats(
            layer_name=gemm.name,
            controller=self.config.controller_type.value,
            cycles=cycles,
            psums=psums,
            macs=gemm.macs,
            iterations=tiles,
            multipliers_used=self.mesh.size,
            array_size=self.mesh.size,
            traffic=traffic,
            phase_cycles={"tiles": tiles * per_tile},
        )

    def run_conv(self, layer: ConvLayer, mapping=None) -> SimulationStats:
        """Convolution lowered to GEMM (im2col), as §V-B3 describes.

        ``mapping`` is accepted for surface uniformity and ignored: the
        TPU's dataflow is fixed (§V-A)."""
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats

    def run_fc(self, layer: FcLayer, mapping=None) -> SimulationStats:
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats
