"""MAGMA controller: sparse-dense GEMM (the paper's §IX extension).

The paper's future work names "support for more operators such as
sparse-dense matrix multiplication, which would allow other accelerator
designs like MAGMA to be evaluated".  This controller models such a
design: a linear multiplier array executing ``A_sparse @ B_dense`` where
the *stationary* operand ``A`` is compressed (CSR-style, only non-zeros
are fetched and multiplied) and the streaming operand ``B`` is dense.

Differences from SIGMA that the model captures:

* **operand asymmetry** — only ``A``'s traffic and MACs shrink with
  sparsity; ``B`` streams in full once per stationary fold;
* **row-packed scheduling** — non-zero rows are packed onto the array,
  so fold count scales with ``nnz`` rather than positions (MAGMA does
  not pay SIGMA's position-fold psum invariance: its psum traffic
  *does* shrink with sparsity);
* **gather overhead** — each fold pays a column-index gather cost for
  routing dense-operand elements to the non-zero positions.

Cycle counts are deterministic functions of (layer, config), like every
other controller.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.errors import ConfigError
from repro.stonne.config import ControllerType, SimulatorConfig
from repro.stonne.controller import (
    AcceleratorController,
    _FLOAT_EXACT,
    _INT64_SAFE,
    _lowered_gemm_batch,
    register_controller,
)
from repro.stonne.distribution import DistributionNetwork
from repro.stonne.layer import ConvLayer, FcLayer, GemmLayer, ceil_div
from repro.stonne.params import CycleModelParams, DEFAULT_PARAMS
from repro.stonne.reduction import make_reduction_network
from repro.stonne.stats import SimulationStats, TrafficBreakdown

#: Cycles per fold spent resolving the gather of dense-operand columns.
GATHER_CYCLES_PER_FOLD = 1


@register_controller(ControllerType.MAGMA_SPARSE_DENSE)
class MagmaController(AcceleratorController):
    """Simulates sparse-dense GEMM workloads on a MAGMA-style array."""

    consumes_sparsity = True

    def __init__(
        self,
        config: SimulatorConfig,
        params: CycleModelParams = DEFAULT_PARAMS,
    ) -> None:
        if config.controller_type is not ControllerType.MAGMA_SPARSE_DENSE:
            raise ConfigError(
                f"MagmaController requires a MAGMA config, got "
                f"{config.controller_type.value}"
            )
        self.config = config
        self.params = params
        self.distribution = DistributionNetwork(
            bandwidth=config.dn_bw, fanout=config.ms_size
        )
        self.reduction = make_reduction_network(
            config.reduce_network_type.value,
            bandwidth=config.rn_bw,
            rmw_occupancy=params.rmw_occupancy,
        )

    @property
    def density(self) -> float:
        """Fraction of non-zeros in the sparse (stationary) operand."""
        return 1.0 - self.config.sparsity_ratio / 100.0

    def run_gemm(self, gemm: GemmLayer) -> SimulationStats:
        """Simulate ``A_sparse(M x K) @ B_dense(K x N)``."""
        ms = self.config.ms_size
        density = self.density
        nnz = max(1, int(round(gemm.M * gemm.K * density)))
        effective_macs = nnz * gemm.N

        # Row-packed folds: the array holds `ms` non-zeros at a time.
        folds = ceil_div(nnz, ms)

        # Stationary operand: each non-zero loaded once.
        a_cycles = self.distribution.cycles_to_distribute(nnz)
        # Streaming operand: per fold, the N dense columns stream through;
        # each fold touches at most `ms` distinct K-rows per column.
        rows_per_fold = min(gemm.K, ms)
        b_cycles = folds * gemm.N * ceil_div(
            rows_per_fold, self.config.dn_bw
        )
        compute_cycles = ceil_div(effective_macs, ms)
        # Partial sums: each output row is accumulated once per fold *of
        # that row's non-zeros* — row packing makes psum traffic shrink
        # with sparsity, unlike SIGMA's position-tiled folds.
        nnz_per_row = max(1, ceil_div(nnz, gemm.M))
        row_folds = ceil_div(nnz_per_row, ms)
        psum_writes = gemm.M * gemm.N * row_folds
        psum_cycles = self.reduction.cycles_to_collect(psum_writes, partial=True)
        gather_cycles = GATHER_CYCLES_PER_FOLD * folds
        fixed = self.params.sigma_fixed_overhead

        cycles = (
            max(compute_cycles, b_cycles)
            + a_cycles
            + psum_cycles
            + gather_cycles
            + fixed
        )
        traffic = TrafficBreakdown(
            weights_distributed=nnz,
            inputs_distributed=folds * rows_per_fold * gemm.N,
            psums_reduced=psum_writes,
            outputs_written=gemm.output_elements,
        )
        return SimulationStats(
            layer_name=gemm.name,
            controller=self.config.controller_type.value,
            cycles=cycles,
            psums=psum_writes,
            macs=effective_macs,
            iterations=folds,
            multipliers_used=min(ms, nnz),
            array_size=ms,
            traffic=traffic,
            phase_cycles={
                "stream": max(compute_cycles, b_cycles),
                "stationary_load": a_cycles,
                "psum": psum_cycles,
                "gather": gather_cycles,
                "fixed": fixed,
            },
        )

    def run_fc(self, layer: FcLayer, mapping=None) -> SimulationStats:
        """Dense layer with sparse weights (``mapping`` ignored)."""
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats

    def run_conv(self, layer: ConvLayer, mapping=None) -> SimulationStats:
        """Convolution via im2col, sparse filters x dense input matrix."""
        stats = self.run_gemm(layer.as_gemm())
        stats.layer_name = layer.name
        return stats

    # ------------------------------------------------------------------
    # batch kernels (see AcceleratorController contract)
    # ------------------------------------------------------------------
    def run_conv_batch(self, layer, mappings):
        return _lowered_gemm_batch(self, layer, mappings)

    def run_fc_batch(self, layer, mappings):
        return _lowered_gemm_batch(self, layer, mappings)

    def run_gemm_batch(
        self, gemms: Sequence[GemmLayer]
    ) -> List[Union[SimulationStats, Exception]]:
        """One numpy pass over heterogeneous GEMMs, bit-identical to
        :meth:`run_gemm` (the nnz rounding is replicated exactly; rows at
        float-precision or int64 limits replay through it)."""
        import numpy as np

        results: List[Union[SimulationStats, Exception]] = [None] * len(gemms)
        if not gemms:
            return results
        try:
            dims = np.array(
                [(g.M, g.K, g.N) for g in gemms], dtype=np.int64
            ).reshape(len(gemms), 3)
        except OverflowError:
            return super().run_gemm_batch(gemms)

        m, k, n = dims.T
        mf, kf, nf = dims.astype(np.float64).T
        occ = self.reduction.rmw_occupancy
        bad = (m < 1) | (k < 1) | (n < 1)
        bad |= mf * kf > _FLOAT_EXACT
        bad |= mf * nf * np.maximum(kf, 1.0) * (occ + 2) > _INT64_SAFE / 16.0
        for row in np.flatnonzero(bad).tolist():
            try:
                results[row] = self.run_gemm(gemms[row])
            except Exception as exc:
                results[row] = exc
        ok = np.flatnonzero(~bad)
        if not ok.size:
            return results

        m, k, n = m[ok], k[ok], n[ok]
        mf, kf = mf[ok], kf[ok]
        ms = self.config.ms_size
        dn_bw = self.config.dn_bw

        nnz = np.maximum(1, np.round(mf * kf * self.density).astype(np.int64))
        effective_macs = nnz * n
        folds = -(-nnz // ms)
        a_cycles = -(-nnz // dn_bw)
        rows_per_fold = np.minimum(k, ms)
        b_cycles = folds * n * -(-rows_per_fold // dn_bw)
        compute = -(-effective_macs // ms)
        nnz_per_row = np.maximum(1, -(-nnz // m))
        row_folds = -(-nnz_per_row // ms)
        psum_writes = m * n * row_folds
        psum_cycles = -(-(psum_writes * occ) // self.config.rn_bw)
        gather = GATHER_CYCLES_PER_FOLD * folds
        fixed = self.params.sigma_fixed_overhead
        stream = np.maximum(compute, b_cycles)
        cycles = stream + a_cycles + psum_cycles + gather + fixed

        ctrl = self.config.controller_type.value
        cyc_l = cycles.tolist()
        psum_l = psum_writes.tolist()
        macs_l = effective_macs.tolist()
        iter_l = folds.tolist()
        used_l = np.minimum(ms, nnz).tolist()
        nnz_l = nnz.tolist()
        id_l = (folds * rows_per_fold * n).tolist()
        out_l = (m * n).tolist()
        stream_l = stream.tolist()
        a_l = a_cycles.tolist()
        psumc_l = psum_cycles.tolist()
        gather_l = gather.tolist()
        for pos, row in enumerate(ok.tolist()):
            results[row] = SimulationStats(
                layer_name=gemms[row].name,
                controller=ctrl,
                cycles=cyc_l[pos],
                psums=psum_l[pos],
                macs=macs_l[pos],
                iterations=iter_l[pos],
                multipliers_used=used_l[pos],
                array_size=ms,
                traffic=TrafficBreakdown(
                    weights_distributed=nnz_l[pos],
                    inputs_distributed=id_l[pos],
                    psums_reduced=psum_l[pos],
                    outputs_written=out_l[pos],
                ),
                phase_cycles={
                    "stream": stream_l[pos],
                    "stationary_load": a_l[pos],
                    "psum": psumc_l[pos],
                    "gather": gather_l[pos],
                    "fixed": fixed,
                },
            )
        return results
