"""Distribution network model.

MAERI and SIGMA distribute operands from the global buffer to the
multiplier array through a tree of tiny switches (MAERI's chubby
distribution tree, SIGMA's Benes network).  Two properties matter for
cycle counts:

* **bandwidth** — at most ``dn_bw`` distinct elements enter the tree per
  cycle;
* **multicast** — an element needed by several multipliers (e.g. a filter
  weight shared across output-pixel virtual neurons) traverses the tree
  once and is replicated by the switches, so it consumes a single
  bandwidth slot;
* **latency** — a value takes ``depth = log2(fanout)`` cycles to reach the
  leaves; this shows up as pipeline fill, not steady-state throughput.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import SimulationError
from repro.stonne.layer import ceil_div


@dataclass(frozen=True)
class DistributionNetwork:
    """A bandwidth-limited multicast distribution tree.

    Args:
        bandwidth: Distinct elements accepted per cycle (``dn_bw``).
        fanout: Number of leaf multipliers the tree feeds.
    """

    bandwidth: int
    fanout: int

    def __post_init__(self) -> None:
        if self.bandwidth < 1:
            raise SimulationError(f"dn bandwidth must be >= 1, got {self.bandwidth}")
        if self.fanout < 1:
            raise SimulationError(f"dn fanout must be >= 1, got {self.fanout}")

    @property
    def depth(self) -> int:
        """Tree levels between the buffer port and the leaves."""
        return max(1, math.ceil(math.log2(self.fanout))) if self.fanout > 1 else 1

    def cycles_to_distribute(self, unique_elements: int) -> int:
        """Steady-state cycles to inject ``unique_elements`` into the tree.

        Multicast replication is free: callers pass the count of *distinct*
        elements.  Zero elements cost zero cycles.
        """
        if unique_elements < 0:
            raise SimulationError(
                f"cannot distribute a negative element count: {unique_elements}"
            )
        if unique_elements == 0:
            return 0
        return ceil_div(unique_elements, self.bandwidth)

    def fill_latency(self) -> int:
        """Cycles for the first value to travel from the port to a leaf."""
        return self.depth
