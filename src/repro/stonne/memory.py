"""On-chip memory models: global buffer and accumulation buffer.

The global buffer sources operands into the distribution network and sinks
final outputs; we model it as bandwidth-matched to the networks (STONNE's
default), so it never throttles beyond ``dn_bw``/``rn_bw``.  What *does*
matter for cycle counts is the accumulation buffer:

* a **partial** output (a psum that will be revisited by a later temporal
  fold) performs a read-modify-write, occupying the reduction port for
  :data:`~repro.stonne.params.CycleModelParams.rmw_occupancy` slots;
* when consecutive tile iterations accumulate into the *same* output
  elements (i.e. the innermost temporal loop walks a reduction dimension),
  a read-after-write hazard inserts
  :data:`~repro.stonne.params.CycleModelParams.acc_raw_latency` stall
  cycles per iteration.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SimulationError


@dataclass
class AccumulationBuffer:
    """Accumulation buffer with RMW-hazard accounting.

    Args:
        enabled: Whether the architecture has an accumulation buffer at
            all.  Without one, partial sums spill to the global buffer and
            are re-fetched, doubling the psum traffic (STONNE models rigid
            architectures this way; MAERI defaults to enabled).
        raw_latency: Stall cycles for a same-address read-after-write.
    """

    enabled: bool = True
    raw_latency: int = 2
    reads: int = field(default=0, init=False)
    writes: int = field(default=0, init=False)

    def __post_init__(self) -> None:
        if self.raw_latency < 0:
            raise SimulationError(f"raw_latency must be >= 0, got {self.raw_latency}")

    def record_partial_writes(self, count: int) -> None:
        """Account a batch of partial-output read-modify-writes."""
        if count < 0:
            raise SimulationError("negative write count")
        self.reads += count
        self.writes += count

    def record_final_writes(self, count: int) -> None:
        if count < 0:
            raise SimulationError("negative write count")
        self.writes += count

    def hazard_stall(self, same_outputs_as_previous: bool) -> int:
        """Stall cycles between two iterations.

        Only iterations that revisit the same output addresses (temporal
        reduction folds) pay the RAW latency.
        """
        if not same_outputs_as_previous:
            return 0
        return self.raw_latency if self.enabled else 2 * self.raw_latency

    def spill_factor(self) -> int:
        """Psum traffic multiplier when there is no accumulation buffer."""
        return 1 if self.enabled else 2


@dataclass(frozen=True)
class GlobalBuffer:
    """The SRAM feeding the distribution network.

    Modelled as bandwidth-matched: ``read_bandwidth`` equals the
    distribution network's and ``write_bandwidth`` the reduction
    network's, so the networks are the binding constraint.  The class
    exists so capacity checks and traffic accounting have a home.
    """

    read_bandwidth: int
    write_bandwidth: int
    capacity_elements: int = 1 << 20

    def __post_init__(self) -> None:
        if self.read_bandwidth < 1 or self.write_bandwidth < 1:
            raise SimulationError("global buffer bandwidths must be >= 1")
        if self.capacity_elements < 1:
            raise SimulationError("global buffer capacity must be >= 1")

    def fits(self, working_set_elements: int) -> bool:
        """Whether a layer's working set fits without DRAM refetch."""
        return working_set_elements <= self.capacity_elements
